// Package kmeans implements Lloyd's algorithm with k-means++ seeding
// and an optional mini-batch mode. It is the learned-partitioning
// primitive shared by the IVF family, quantizers (PQ/OPQ codebooks),
// and the SPANN-style disk index (Section 2.2).
package kmeans

import (
	"fmt"
	"math"
	"math/rand"

	"vdbms/internal/vec"
)

// Config controls training.
type Config struct {
	K         int   // number of clusters; required
	MaxIter   int   // Lloyd iterations; default 25
	Seed      int64 // RNG seed; default 1
	MiniBatch int   // if > 0, sample this many points per iteration
}

// Result holds trained centroids and assignment metadata.
type Result struct {
	K         int
	Dim       int
	Centroids []float32 // row-major K x Dim
	// Assign[i] is the centroid index of training point i. Populated
	// only for full-batch training (MiniBatch == 0).
	Assign []int
	// Inertia is the final sum of squared distances from each training
	// point to its centroid (full-batch only).
	Inertia float64
}

// Centroid returns centroid c as a slice view.
func (r *Result) Centroid(c int) []float32 {
	return r.Centroids[c*r.Dim : (c+1)*r.Dim]
}

// Nearest returns the index of the centroid closest to v and the
// squared distance to it.
func (r *Result) Nearest(v []float32) (int, float32) {
	best, bestD := 0, float32(math.Inf(1))
	for c := 0; c < r.K; c++ {
		d := vec.SquaredL2(v, r.Centroid(c))
		if d < bestD {
			best, bestD = c, d
		}
	}
	return best, bestD
}

// NearestN returns the indices of the n closest centroids to v in
// ascending distance order. Used by IVF multi-probe and SPANN closure
// assignment.
func (r *Result) NearestN(v []float32, n int) []int {
	if n > r.K {
		n = r.K
	}
	type cd struct {
		c int
		d float32
	}
	best := make([]cd, 0, n)
	for c := 0; c < r.K; c++ {
		d := vec.SquaredL2(v, r.Centroid(c))
		if len(best) < n {
			best = append(best, cd{c, d})
			for j := len(best) - 1; j > 0 && best[j].d < best[j-1].d; j-- {
				best[j], best[j-1] = best[j-1], best[j]
			}
			continue
		}
		if d >= best[n-1].d {
			continue
		}
		best[n-1] = cd{c, d}
		for j := n - 1; j > 0 && best[j].d < best[j-1].d; j-- {
			best[j], best[j-1] = best[j-1], best[j]
		}
	}
	out := make([]int, len(best))
	for i, b := range best {
		out[i] = b.c
	}
	return out
}

// Train clusters n row-major points of dimension d.
func Train(data []float32, n, d int, cfg Config) (*Result, error) {
	if cfg.K <= 0 {
		return nil, fmt.Errorf("kmeans: K must be positive, got %d", cfg.K)
	}
	if n == 0 {
		return nil, fmt.Errorf("kmeans: no training data")
	}
	if len(data) != n*d {
		return nil, fmt.Errorf("kmeans: data length %d != n*d %d", len(data), n*d)
	}
	k := cfg.K
	if k > n {
		k = n // degenerate: every point its own cluster
	}
	maxIter := cfg.MaxIter
	if maxIter <= 0 {
		maxIter = 25
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))

	res := &Result{K: k, Dim: d, Centroids: seedPlusPlus(data, n, d, k, rng)}
	if cfg.MiniBatch > 0 && cfg.MiniBatch < n {
		trainMiniBatch(res, data, n, d, maxIter, cfg.MiniBatch, rng)
		return res, nil
	}
	trainLloyd(res, data, n, d, maxIter, rng)
	return res, nil
}

// seedPlusPlus picks initial centroids with the k-means++ D^2 rule.
func seedPlusPlus(data []float32, n, d, k int, rng *rand.Rand) []float32 {
	cent := make([]float32, k*d)
	first := rng.Intn(n)
	copy(cent[:d], data[first*d:(first+1)*d])
	dist := make([]float64, n)
	for i := 0; i < n; i++ {
		dist[i] = float64(vec.SquaredL2(data[i*d:(i+1)*d], cent[:d]))
	}
	for c := 1; c < k; c++ {
		var total float64
		for _, dd := range dist {
			total += dd
		}
		var pick int
		if total <= 0 {
			pick = rng.Intn(n)
		} else {
			target := rng.Float64() * total
			acc := 0.0
			pick = n - 1
			for i, dd := range dist {
				acc += dd
				if acc >= target {
					pick = i
					break
				}
			}
		}
		row := cent[c*d : (c+1)*d]
		copy(row, data[pick*d:(pick+1)*d])
		for i := 0; i < n; i++ {
			dd := float64(vec.SquaredL2(data[i*d:(i+1)*d], row))
			if dd < dist[i] {
				dist[i] = dd
			}
		}
	}
	return cent
}

func trainLloyd(res *Result, data []float32, n, d, maxIter int, rng *rand.Rand) {
	k := res.K
	assign := make([]int, n)
	counts := make([]int, k)
	sums := make([]float64, k*d)
	prevInertia := math.Inf(1)
	for iter := 0; iter < maxIter; iter++ {
		for i := range counts {
			counts[i] = 0
		}
		for i := range sums {
			sums[i] = 0
		}
		inertia := 0.0
		for i := 0; i < n; i++ {
			row := data[i*d : (i+1)*d]
			c, dd := res.Nearest(row)
			assign[i] = c
			counts[c]++
			inertia += float64(dd)
			s := sums[c*d : (c+1)*d]
			for j, x := range row {
				s[j] += float64(x)
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				// Re-seed an empty cluster at a random point, the
				// standard remedy for dead centroids.
				p := rng.Intn(n)
				copy(res.Centroids[c*d:(c+1)*d], data[p*d:(p+1)*d])
				continue
			}
			inv := 1 / float64(counts[c])
			cRow := res.Centroids[c*d : (c+1)*d]
			s := sums[c*d : (c+1)*d]
			for j := range cRow {
				cRow[j] = float32(s[j] * inv)
			}
		}
		res.Inertia = inertia
		if prevInertia-inertia < 1e-7*(1+inertia) {
			break
		}
		prevInertia = inertia
	}
	// Final assignment pass against the last centroid update.
	res.Inertia = 0
	for i := 0; i < n; i++ {
		c, dd := res.Nearest(data[i*d : (i+1)*d])
		assign[i] = c
		res.Inertia += float64(dd)
	}
	res.Assign = assign
}

func trainMiniBatch(res *Result, data []float32, n, d, maxIter, batch int, rng *rand.Rand) {
	k := res.K
	counts := make([]int, k) // per-centroid cumulative counts for decaying step size
	for iter := 0; iter < maxIter; iter++ {
		for b := 0; b < batch; b++ {
			i := rng.Intn(n)
			row := data[i*d : (i+1)*d]
			c, _ := res.Nearest(row)
			counts[c]++
			eta := float32(1 / float64(counts[c]))
			cRow := res.Centroids[c*d : (c+1)*d]
			for j := range cRow {
				cRow[j] += eta * (row[j] - cRow[j])
			}
		}
	}
	_ = k
}
