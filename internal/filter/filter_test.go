package filter

import (
	"testing"
)

func buildTable(t *testing.T, n int) *Table {
	t.Helper()
	tbl := NewTable()
	if _, err := tbl.AddColumn("price", Float64); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.AddColumn("stock", Int64); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.AddColumn("brand", String); err != nil {
		t.Fatal(err)
	}
	brands := []string{"acme", "globex", "initech"}
	for i := 0; i < n; i++ {
		err := tbl.AppendRow(map[string]Value{
			"price": FloatV(float64(i)),
			"stock": IntV(int64(i % 10)),
			"brand": StringV(brands[i%3]),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestColumnBasics(t *testing.T) {
	c := NewColumn("x", Int64)
	if c.Name() != "x" || c.Kind() != Int64 || c.Len() != 0 {
		t.Fatal("fresh column wrong")
	}
	c.Append(IntV(7))
	if c.Len() != 1 || c.Get(0).I != 7 {
		t.Fatal("append/get wrong")
	}
}

func TestTableSchemaRules(t *testing.T) {
	tbl := NewTable()
	if _, err := tbl.AddColumn("a", Int64); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.AddColumn("a", Int64); err == nil {
		t.Fatal("want duplicate-column error")
	}
	if err := tbl.AppendRow(map[string]Value{"a": IntV(1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.AddColumn("b", Int64); err == nil {
		t.Fatal("want error adding column after rows")
	}
	if err := tbl.AppendRow(map[string]Value{"b": IntV(1)}); err == nil {
		t.Fatal("want unknown-column error")
	}
	if err := tbl.AppendRow(map[string]Value{}); err == nil {
		t.Fatal("want arity error")
	}
	if got := tbl.Columns(); len(got) != 1 || got[0] != "a" {
		t.Fatalf("Columns = %v", got)
	}
}

func TestPredicateOps(t *testing.T) {
	tbl := buildTable(t, 30)
	cases := []struct {
		pred Predicate
		id   int
		want bool
	}{
		{Predicate{Column: "price", Op: Eq, Value: FloatV(5)}, 5, true},
		{Predicate{Column: "price", Op: Ne, Value: FloatV(5)}, 5, false},
		{Predicate{Column: "price", Op: Lt, Value: FloatV(5)}, 4, true},
		{Predicate{Column: "price", Op: Le, Value: FloatV(5)}, 5, true},
		{Predicate{Column: "price", Op: Gt, Value: FloatV(5)}, 5, false},
		{Predicate{Column: "price", Op: Ge, Value: FloatV(5)}, 5, true},
		{Predicate{Column: "stock", Op: Eq, Value: IntV(3)}, 13, true},
		{Predicate{Column: "brand", Op: Eq, Value: StringV("acme")}, 0, true},
		{Predicate{Column: "brand", Op: Eq, Value: StringV("acme")}, 1, false},
		{Predicate{Column: "brand", Op: In, Set: []Value{StringV("acme"), StringV("globex")}}, 1, true},
		{Predicate{Column: "brand", Op: In, Set: []Value{StringV("nope")}}, 1, false},
	}
	for i, tc := range cases {
		got, err := tbl.Matches([]Predicate{tc.pred}, tc.id)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got != tc.want {
			t.Fatalf("case %d: %v %s -> %v, want %v", i, tc.pred.Column, tc.pred.Op, got, tc.want)
		}
	}
}

func TestConjunction(t *testing.T) {
	tbl := buildTable(t, 30)
	preds := []Predicate{
		{Column: "price", Op: Lt, Value: FloatV(10)},
		{Column: "stock", Op: Ge, Value: IntV(5)},
	}
	ok, err := tbl.Matches(preds, 7) // price 7 < 10, stock 7 >= 5
	if err != nil || !ok {
		t.Fatalf("row 7: %v %v", ok, err)
	}
	ok, _ = tbl.Matches(preds, 3) // stock 3 < 5
	if ok {
		t.Fatal("row 3 should not match")
	}
}

func TestBitmapAndFilterFuncAgree(t *testing.T) {
	tbl := buildTable(t, 60)
	preds := []Predicate{{Column: "stock", Op: Lt, Value: IntV(3)}}
	bm, err := tbl.Bitmap(preds)
	if err != nil {
		t.Fatal(err)
	}
	fn := tbl.FilterFunc(preds)
	for id := 0; id < 60; id++ {
		if bm.Test(id) != fn(int64(id)) {
			t.Fatalf("bitmap and filter disagree at %d", id)
		}
	}
	if bm.Count() != 18 { // stocks 0,1,2 of each decade
		t.Fatalf("bitmap count = %d", bm.Count())
	}
}

func TestSelectivityEstimate(t *testing.T) {
	tbl := buildTable(t, 1000)
	preds := []Predicate{{Column: "stock", Op: Eq, Value: IntV(0)}}
	sel, err := tbl.EstimateSelectivity(preds, 0) // full scan
	if err != nil {
		t.Fatal(err)
	}
	if sel != 0.1 {
		t.Fatalf("exact selectivity = %v, want 0.1", sel)
	}
	approx, err := tbl.EstimateSelectivity(preds, 100)
	if err != nil {
		t.Fatal(err)
	}
	if approx < 0.0 || approx > 0.3 {
		t.Fatalf("sampled selectivity = %v", approx)
	}
	empty := NewTable()
	if sel, _ := empty.EstimateSelectivity(nil, 10); sel != 1 {
		t.Fatalf("empty table selectivity = %v", sel)
	}
}

func TestValidateAndErrors(t *testing.T) {
	tbl := buildTable(t, 5)
	if err := tbl.Validate([]Predicate{{Column: "nope", Op: Eq}}); err == nil {
		t.Fatal("want unknown-column error")
	}
	if err := tbl.Validate([]Predicate{{Column: "price", Op: Eq}}); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Matches([]Predicate{{Column: "nope", Op: Eq}}, 0); err == nil {
		t.Fatal("want error from Matches")
	}
	if _, err := tbl.Bitmap([]Predicate{{Column: "nope", Op: Eq}}); err == nil {
		t.Fatal("want error from Bitmap")
	}
	if _, err := tbl.EstimateSelectivity([]Predicate{{Column: "nope", Op: Eq}}, 2); err == nil {
		t.Fatal("want error from EstimateSelectivity")
	}
	// FilterFunc swallows errors as non-matches.
	if tbl.FilterFunc([]Predicate{{Column: "nope", Op: Eq}})(0) {
		t.Fatal("bad predicate should not match")
	}
	if _, err := tbl.Matches([]Predicate{{Column: "price", Op: Op(99)}}, 0); err == nil {
		t.Fatal("want unknown-op error")
	}
}

func TestOpString(t *testing.T) {
	for op, want := range map[Op]string{Eq: "=", Ne: "!=", Lt: "<", Le: "<=", Gt: ">", Ge: ">=", In: "in"} {
		if op.String() != want {
			t.Fatalf("%v", op)
		}
	}
}
