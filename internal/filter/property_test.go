package filter

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: for any random table and predicate, Bitmap, FilterFunc,
// and per-row Matches agree exactly, and the bitmap count equals the
// number of matching rows.
func TestBitmapMatchesAgreeProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8, threshold int16, opRaw uint8) bool {
		n := int(nRaw%200) + 1
		rng := rand.New(rand.NewSource(seed))
		tbl := NewTable()
		if _, err := tbl.AddColumn("x", Int64); err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			if err := tbl.AppendRow(map[string]Value{"x": IntV(int64(rng.Intn(100)))}); err != nil {
				return false
			}
		}
		ops := []Op{Eq, Ne, Lt, Le, Gt, Ge}
		pred := []Predicate{{Column: "x", Op: ops[int(opRaw)%len(ops)], Value: IntV(int64(threshold % 100))}}
		bm, err := tbl.Bitmap(pred)
		if err != nil {
			return false
		}
		fn := tbl.FilterFunc(pred)
		count := 0
		for id := 0; id < n; id++ {
			m, err := tbl.Matches(pred, id)
			if err != nil {
				return false
			}
			if m != bm.Test(id) || m != fn(int64(id)) {
				return false
			}
			if m {
				count++
			}
		}
		return count == bm.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: selectivity estimated on the full table equals the exact
// match fraction.
func TestExactSelectivityProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8, cut int16) bool {
		n := int(nRaw%150) + 1
		rng := rand.New(rand.NewSource(seed))
		tbl := NewTable()
		if _, err := tbl.AddColumn("v", Float64); err != nil {
			return false
		}
		match := 0
		c := float64(cut%50) / 10
		for i := 0; i < n; i++ {
			x := rng.Float64() * 10
			if x < c {
				match++
			}
			if err := tbl.AppendRow(map[string]Value{"v": FloatV(x)}); err != nil {
				return false
			}
		}
		pred := []Predicate{{Column: "v", Op: Lt, Value: FloatV(c)}}
		sel, err := tbl.EstimateSelectivity(pred, 0) // full scan
		if err != nil {
			return false
		}
		return sel == float64(match)/float64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
