// Package filter implements the attribute side of hybrid queries
// (Sections 2.1(3) and 2.3): typed attribute columns over row ids,
// boolean predicates, selectivity estimation for the planner, and
// bitmap construction for block-first scans.
package filter

import (
	"fmt"
	"sort"
	"sync"

	"vdbms/internal/bitset"
)

// Kind is an attribute column type.
type Kind int

const (
	// Int64 is a 64-bit integer attribute.
	Int64 Kind = iota
	// Float64 is a floating attribute.
	Float64
	// String is a string attribute.
	String
)

// Value is a dynamically typed attribute value. Exactly one field is
// meaningful per column Kind.
type Value struct {
	I int64
	F float64
	S string
}

// IntV, FloatV, StringV are Value constructors.
func IntV(i int64) Value     { return Value{I: i} }
func FloatV(f float64) Value { return Value{F: f} }
func StringV(s string) Value { return Value{S: s} }

// Column is an append-only typed attribute column aligned with vector
// row ids.
type Column struct {
	mu   sync.RWMutex
	name string
	kind Kind
	ints []int64
	flts []float64
	strs []string
}

// NewColumn creates an empty column.
func NewColumn(name string, kind Kind) *Column {
	return &Column{name: name, kind: kind}
}

// Name returns the column name.
func (c *Column) Name() string { return c.name }

// Kind returns the column type.
func (c *Column) Kind() Kind { return c.kind }

// Len returns the number of rows.
func (c *Column) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.lenLocked()
}

func (c *Column) lenLocked() int {
	switch c.kind {
	case Int64:
		return len(c.ints)
	case Float64:
		return len(c.flts)
	default:
		return len(c.strs)
	}
}

// Append adds a value; row id is implicit (== previous Len).
func (c *Column) Append(v Value) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch c.kind {
	case Int64:
		c.ints = append(c.ints, v.I)
	case Float64:
		c.flts = append(c.flts, v.F)
	case String:
		c.strs = append(c.strs, v.S)
	}
}

// Int64s returns a copy of the first n values of an Int64 column —
// the bulk read used by snapshot serialization, one lock acquisition
// instead of one per row.
func (c *Column) Int64s(n int) []int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]int64(nil), c.ints[:n]...)
}

// Float64s returns a copy of the first n values of a Float64 column.
func (c *Column) Float64s(n int) []float64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]float64(nil), c.flts[:n]...)
}

// Strings returns a copy of the first n values of a String column.
func (c *Column) Strings(n int) []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]string(nil), c.strs[:n]...)
}

// restore replaces the column's data wholesale (bulk restore of an
// empty table; the caller has validated kind and length).
func (c *Column) restore(ints []int64, flts []float64, strs []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ints, c.flts, c.strs = ints, flts, strs
}

// Get returns the value at row id.
func (c *Column) Get(id int) Value {
	c.mu.RLock()
	defer c.mu.RUnlock()
	switch c.kind {
	case Int64:
		return Value{I: c.ints[id]}
	case Float64:
		return Value{F: c.flts[id]}
	default:
		return Value{S: c.strs[id]}
	}
}

// Op is a comparison operator.
type Op int

const (
	// Eq matches values equal to the operand.
	Eq Op = iota
	// Ne matches values not equal to the operand.
	Ne
	// Lt matches values less than the operand.
	Lt
	// Le matches values less than or equal to the operand.
	Le
	// Gt matches values greater than the operand.
	Gt
	// Ge matches values greater than or equal to the operand.
	Ge
	// In matches values contained in the operand set.
	In
)

// String renders the operator.
func (o Op) String() string {
	switch o {
	case Eq:
		return "="
	case Ne:
		return "!="
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	case In:
		return "in"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// Predicate is a condition over one column, optionally conjoined with
// more predicates by the caller.
type Predicate struct {
	Column string
	Op     Op
	Value  Value
	Set    []Value // for In
}

// Table is a named set of aligned columns supporting predicate
// evaluation and bitmap construction.
type Table struct {
	mu   sync.RWMutex
	cols map[string]*Column
	n    int
}

// NewTable creates an empty attribute table.
func NewTable() *Table { return &Table{cols: map[string]*Column{}} }

// AddColumn registers a column; it must be added before any rows.
func (t *Table) AddColumn(name string, kind Kind) (*Column, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.n > 0 {
		return nil, fmt.Errorf("filter: cannot add column %q after rows exist", name)
	}
	if _, dup := t.cols[name]; dup {
		return nil, fmt.Errorf("filter: duplicate column %q", name)
	}
	c := NewColumn(name, kind)
	t.cols[name] = c
	return c, nil
}

// Column retrieves a column by name.
func (t *Table) Column(name string) (*Column, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	c, ok := t.cols[name]
	return c, ok
}

// Columns returns the column names sorted.
func (t *Table) Columns() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]string, 0, len(t.cols))
	for n := range t.cols {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len returns the row count.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.n
}

// View returns a snapshot of the table pinned at n rows. The view
// shares the underlying columns (values are append-only, so the first
// n rows are immutable) but reports Len() == n, so bitmaps,
// selectivity samples, and scans sized off the view never observe rows
// appended after the snapshot was taken. Appending to a view is not
// supported; keep writing through the original table.
func (t *Table) View(n int) *Table {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if n > t.n {
		n = t.n
	}
	return &Table{cols: t.cols, n: n}
}

// AppendRow adds one value per column; missing columns are an error.
func (t *Table) AppendRow(vals map[string]Value) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.validateRowLocked(vals); err != nil {
		return err
	}
	for name, c := range t.cols {
		c.Append(vals[name])
	}
	t.n++
	return nil
}

// ValidateRow checks that vals covers exactly the table's columns
// without appending anything — write paths that must log a row before
// applying it (the WAL) use this to guarantee the logged record is
// always applicable on replay.
func (t *Table) ValidateRow(vals map[string]Value) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.validateRowLocked(vals)
}

func (t *Table) validateRowLocked(vals map[string]Value) error {
	if len(vals) != len(t.cols) {
		return fmt.Errorf("filter: row has %d values, table has %d columns", len(vals), len(t.cols))
	}
	for name := range vals {
		if _, ok := t.cols[name]; !ok {
			return fmt.Errorf("filter: unknown column %q", name)
		}
	}
	return nil
}

// BulkRestore fills an empty table column-wise with n rows: each
// registered column must appear in exactly the map matching its kind,
// with exactly n values. It is the bulk path snapshot loading uses
// instead of n AppendRow calls (one map build and one lock pass per
// row); lengths are validated once up front so every table invariant
// (aligned columns, row count) holds by construction afterwards.
func (t *Table) BulkRestore(n int, ints map[string][]int64, flts map[string][]float64, strs map[string][]string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.n > 0 {
		return fmt.Errorf("filter: BulkRestore into a table with %d rows", t.n)
	}
	for name, c := range t.cols {
		switch c.Kind() {
		case Int64:
			if vals, ok := ints[name]; !ok || len(vals) != n {
				return fmt.Errorf("filter: column %q needs %d int64 values, have %d", name, n, len(ints[name]))
			}
		case Float64:
			if vals, ok := flts[name]; !ok || len(vals) != n {
				return fmt.Errorf("filter: column %q needs %d float64 values, have %d", name, n, len(flts[name]))
			}
		case String:
			if vals, ok := strs[name]; !ok || len(vals) != n {
				return fmt.Errorf("filter: column %q needs %d string values, have %d", name, n, len(strs[name]))
			}
		}
	}
	for name, c := range t.cols {
		switch c.Kind() {
		case Int64:
			c.restore(ints[name], nil, nil)
		case Float64:
			c.restore(nil, flts[name], nil)
		case String:
			c.restore(nil, nil, strs[name])
		}
	}
	t.n = n
	return nil
}

// matches evaluates one predicate against row id.
func (t *Table) matches(p Predicate, id int) (bool, error) {
	c, ok := t.Column(p.Column)
	if !ok {
		return false, fmt.Errorf("filter: unknown column %q", p.Column)
	}
	v := c.Get(id)
	switch c.Kind() {
	case Int64:
		return cmpOrdered(p.Op, v.I, p.Value.I, p.Set, func(x Value) int64 { return x.I })
	case Float64:
		return cmpOrdered(p.Op, v.F, p.Value.F, p.Set, func(x Value) float64 { return x.F })
	default:
		return cmpOrdered(p.Op, v.S, p.Value.S, p.Set, func(x Value) string { return x.S })
	}
}

func cmpOrdered[T int64 | float64 | string](op Op, have, want T, set []Value, get func(Value) T) (bool, error) {
	switch op {
	case Eq:
		return have == want, nil
	case Ne:
		return have != want, nil
	case Lt:
		return have < want, nil
	case Le:
		return have <= want, nil
	case Gt:
		return have > want, nil
	case Ge:
		return have >= want, nil
	case In:
		for _, s := range set {
			if have == get(s) {
				return true, nil
			}
		}
		return false, nil
	default:
		return false, fmt.Errorf("filter: unknown op %v", op)
	}
}

// Matches evaluates a conjunction of predicates against a row.
func (t *Table) Matches(preds []Predicate, id int) (bool, error) {
	for _, p := range preds {
		ok, err := t.matches(p, id)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// Bitmap builds the allowlist bitmap of a predicate conjunction over
// all current rows — the offline step of block-first scan.
func (t *Table) Bitmap(preds []Predicate) (*bitset.Bitset, error) {
	n := t.Len()
	b := bitset.New(n)
	for id := 0; id < n; id++ {
		ok, err := t.Matches(preds, id)
		if err != nil {
			return nil, err
		}
		if ok {
			b.Set(id)
		}
	}
	return b, nil
}

// FilterFunc adapts a predicate conjunction to the visit-first
// index.Params.Filter signature. Evaluation errors surface as
// non-matches; Validate first to catch schema mistakes.
func (t *Table) FilterFunc(preds []Predicate) func(id int64) bool {
	return func(id int64) bool {
		ok, err := t.Matches(preds, int(id))
		return err == nil && ok
	}
}

// Validate checks that every predicate references an existing column.
func (t *Table) Validate(preds []Predicate) error {
	for _, p := range preds {
		if _, ok := t.Column(p.Column); !ok {
			return fmt.Errorf("filter: unknown column %q", p.Column)
		}
	}
	return nil
}

// EstimateSelectivity samples up to sampleSize rows and returns the
// fraction matching — the statistic rule-based planners (Qdrant,
// Vespa) key their pre/post-filter decision on. Rows are drawn with a
// deterministic LCG rather than a fixed stride so periodic attribute
// patterns cannot alias with the sample.
func (t *Table) EstimateSelectivity(preds []Predicate, sampleSize int) (float64, error) {
	n := t.Len()
	if n == 0 {
		return 1, nil
	}
	if sampleSize <= 0 || sampleSize > n {
		sampleSize = n
	}
	match := 0
	state := uint64(88172645463325252)
	for i := 0; i < sampleSize; i++ {
		var id int
		if sampleSize == n {
			id = i
		} else {
			// xorshift64 for a cheap, seedless deterministic draw.
			state ^= state << 13
			state ^= state >> 7
			state ^= state << 17
			id = int(state % uint64(n))
		}
		ok, err := t.Matches(preds, id)
		if err != nil {
			return 0, err
		}
		if ok {
			match++
		}
	}
	return float64(match) / float64(sampleSize), nil
}
