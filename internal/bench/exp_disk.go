package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"vdbms/internal/dataset"
	"vdbms/internal/index"
	"vdbms/internal/index/diskann"
	"vdbms/internal/index/spann"
	"vdbms/internal/topk"
	"vdbms/internal/vec"
)

// E7 — disk-resident indexes: DiskANN's PQ-guided beam search bounds
// record reads per query; SPANN closure assignment raises recall at
// equal probes; caches absorb repeat traffic (Section 2.2,
// disk-resident indexes).
func init() {
	register("E7", "disk indexes bound I/O per query; closure assignment helps SPANN", runE7)
}

func runE7(w io.Writer, scale int) {
	n := scaled(4000, scale, 1000)
	ds := dataset.Clustered(n, 32, 16, 0.4, 1)
	qs := ds.Queries(25, 0.05, 2)
	truth := dataset.GroundTruth(vec.SquaredL2, ds, qs, 10)
	dir, err := os.MkdirTemp("", "vdbms-e7-")
	if err != nil {
		fmt.Fprintf(w, "E7: %v\n", err)
		return
	}
	defer os.RemoveAll(dir)

	t := NewTable(fmt.Sprintf("E7a DiskANN (n=%d, d=32, R=16)", n),
		"variant", "ef", "recall@10", "IO/query", "cache.hit/query")
	run := func(name string, cfg diskann.Config, efs []int) {
		da, err := diskann.Build(ds.Data, n, ds.Dim, filepath.Join(dir, name+".diskann"), cfg)
		if err != nil {
			fmt.Fprintf(w, "E7 %s: %v\n", name, err)
			return
		}
		defer da.Close()
		for _, ef := range efs {
			da.ResetStats()
			got := make([][]topk.Result, len(qs))
			for i, q := range qs {
				got[i], _ = da.Search(q, 10, index.Params{Ef: ef})
			}
			t.AddRow(name, ef,
				sharedRecall(got, truth),
				float64(da.IOReads())/float64(len(qs)),
				float64(da.CacheHits())/float64(len(qs)))
		}
	}
	run("pq-guided", diskann.Config{R: 16, Beam: 4, Seed: 1}, []int{20, 40, 80})
	run("pq-guided+cache", diskann.Config{R: 16, Beam: 4, Seed: 1, CachePages: n}, []int{40, 40})
	run("no-pq (ablation)", diskann.Config{R: 16, Beam: 4, Seed: 1, NoPQ: true}, []int{40})
	t.Print(w)
	fmt.Fprintln(w, "expected shape: PQ guidance reads ~ef records; no-PQ multiplies I/O; warm cache converts reads to hits")

	t2 := NewTable(fmt.Sprintf("E7b SPANN (n=%d, d=32, nlist=%d)", n, 64),
		"closure.eps", "repl.factor", "nprobe", "recall@10", "IO/query")
	for _, eps := range []float64{0, 0.25} {
		sp, err := spann.Build(ds.Data, n, ds.Dim, filepath.Join(dir, fmt.Sprintf("e%.2f.spann", eps)), spann.Config{
			NList: 64, ClosureEps: eps, Seed: 1, PageSize: 4096,
		})
		if err != nil {
			fmt.Fprintf(w, "E7b: %v\n", err)
			return
		}
		rf := sp.ReplicationFactor()
		for _, np := range []int{1, 2, 4, 8} {
			sp.ResetStats()
			got := make([][]topk.Result, len(qs))
			for i, q := range qs {
				got[i], _ = sp.Search(q, 10, index.Params{NProbe: np})
			}
			t2.AddRow(eps, rf, np, sharedRecall(got, truth), float64(sp.IOReads())/float64(len(qs)))
		}
		sp.Close()
	}
	t2.Print(w)
	fmt.Fprintln(w, "expected shape: closure (eps=0.25) beats eps=0 recall at small nprobe, at the cost of replication > 1")
}
