package bench

import (
	"fmt"
	"io"

	"vdbms/internal/dataset"
	"vdbms/internal/topk"
	"vdbms/internal/vec"
)

// E1a — score design: different similarity scores return different
// top-k sets (Section 2.1). We report the mean top-10 overlap between
// every pair of basic scores on Gaussian-mixture data.
func init() {
	register("E1a", "different scores give different results; score selection matters", runE1a)
}

func runE1a(w io.Writer, scale int) {
	n := scaled(2000, scale, 500)
	ds := dataset.Clustered(n, 32, 8, 0.6, 1)
	qs := ds.Queries(20, 0.1, 2)
	cands := vec.DefaultCandidates()
	// top-10 ids per candidate per query
	tops := make([][]map[int64]bool, len(cands))
	for ci, c := range cands {
		tops[ci] = make([]map[int64]bool, len(qs))
		truth := dataset.GroundTruth(c.Fn, ds, qs, 10)
		for qi := range qs {
			set := map[int64]bool{}
			for _, r := range truth[qi] {
				set[r.ID] = true
			}
			tops[ci][qi] = set
		}
	}
	headers := []string{"score"}
	for _, c := range cands {
		headers = append(headers, c.Name)
	}
	t := NewTable(fmt.Sprintf("E1a score top-10 overlap (n=%d, d=32)", n), headers...)
	for i, ci := range cands {
		row := []any{ci.Name}
		for j := range cands {
			var overlap float64
			for qi := range qs {
				inter := 0
				for id := range tops[i][qi] {
					if tops[j][qi][id] {
						inter++
					}
				}
				overlap += float64(inter) / 10
			}
			row = append(row, overlap/float64(len(qs)))
		}
		t.AddRow(row...)
	}
	t.Print(w)
	fmt.Fprintln(w, "expected shape: diagonal 1.0; l2/cosine close on this data; ip diverges most")
}

// E1b — curse of dimensionality: relative distance contrast
// (Dmax-Dmin)/Dmin shrinks as dimensionality grows on i.i.d. data
// (Beyer et al., Section 2.1).
func init() {
	register("E1b", "distance contrast vanishes as dimensionality grows", runE1b)
}

func runE1b(w io.Writer, scale int) {
	n := scaled(1000, scale, 300)
	t := NewTable(fmt.Sprintf("E1b relative contrast vs dimension (uniform, n=%d)", n),
		"dim", "contrast(L2)", "contrast(L1)")
	for _, d := range []int{2, 4, 8, 16, 32, 64, 128, 256, 512, 1024} {
		ds := dataset.Uniform(n, d, int64(d))
		q := dataset.Uniform(1, d, int64(d)+9999).Row(0)
		c2 := vec.RelativeContrast(vec.SquaredL2, ds.Rows(), q)
		c1 := vec.RelativeContrast(vec.ManhattanDistance, ds.Rows(), q)
		t.AddRow(d, c2, c1)
	}
	t.Print(w)
	fmt.Fprintln(w, "expected shape: both columns decay monotonically toward 0 as dim grows")
}

// sharedRecall computes mean recall@k of search results against
// ground-truth lists.
func sharedRecall(got [][]topk.Result, truth [][]topk.Result) float64 {
	return dataset.MeanRecall(got, truth)
}
