package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"vdbms/internal/dataset"
	"vdbms/internal/dist"
	"vdbms/internal/executor"
	"vdbms/internal/index"
	"vdbms/internal/index/hnsw"
	"vdbms/internal/index/ivf"
	"vdbms/internal/lsm"
	"vdbms/internal/planner"
	"vdbms/internal/quant"
	"vdbms/internal/topk"
	"vdbms/internal/vec"
)

// E9 — hardware-acceleration analog: the register-blocked 4-bit PQ
// scan vs the memory-table ADC scan (Quick ADC, Section 2.3(1)).
func init() {
	register("E9", "register-resident PQ LUT scan beats the in-memory float table scan", runE9)
}

func runE9(w io.Writer, scale int) {
	nCodes := scaled(100000, scale, 20000)
	train := dataset.Clustered(2000, 32, 8, 0.4, 1)
	pq, err := quant.TrainPQ(train.Data, train.Count, train.Dim, quant.PQConfig{M: 16, Ks: 16, Seed: 1, MaxIter: 10})
	if err != nil {
		fmt.Fprintf(w, "E9: %v\n", err)
		return
	}
	// Synthesize a large code matrix by repeated encoding.
	codes := make([]byte, nCodes*pq.M)
	for i := 0; i < nCodes; i++ {
		pq.Encode(train.Row(i%train.Count), codes[i*pq.M:(i+1)*pq.M])
	}
	packed, err := pq.PackCodes4(codes, nCodes)
	if err != nil {
		fmt.Fprintf(w, "E9: %v\n", err)
		return
	}
	q := train.Queries(1, 0.05, 2)[0]
	tab := pq.ADC(q)
	ft, err := tab.Quantize()
	if err != nil {
		fmt.Fprintf(w, "E9: %v\n", err)
		return
	}
	out := make([]float32, nCodes)
	iters := 5
	naive := Timed(iters, func() { tab.DistanceBatchNaive(codes, out) })
	fast := Timed(iters, func() { ft.DistanceBatch4(packed, out) })
	t := NewTable(fmt.Sprintf("E9 PQ scan kernels (M=16, Ks=16, %d codes)", nCodes),
		"kernel", "ns/code", "codes/sec", "speedup")
	nsPer := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / float64(nCodes) }
	t.AddRow("ADC float table", nsPer(naive), QPS(naive)*float64(nCodes), 1.0)
	t.AddRow("packed 4-bit LUT", nsPer(fast), QPS(fast)*float64(nCodes), float64(naive)/float64(fast))
	t.Print(w)
	fmt.Fprintln(w, "expected shape: packed LUT scan faster (the SIMD-shuffle effect; magnitude is Go's, not AVX's)")
}

// E10 — batched queries: answering a batch together amortizes
// scheduling and cache misses (Section 2.1(3) / Milvus).
func init() { register("E10", "batched execution amortizes per-query overhead", runE10) }

func runE10(w io.Writer, scale int) {
	n := scaled(8000, scale, 2000)
	ds := dataset.Clustered(n, 32, 16, 0.4, 1)
	h, err := hnsw.Build(ds.Data, ds.Count, ds.Dim, hnsw.Config{M: 8, Seed: 1})
	if err != nil {
		fmt.Fprintf(w, "E10: %v\n", err)
		return
	}
	env, err := executor.NewEnv(ds.Data, ds.Count, ds.Dim, nil, h, nil)
	if err != nil {
		fmt.Fprintf(w, "E10: %v\n", err)
		return
	}
	qs := ds.Queries(256, 0.05, 2)
	plan := planner.Plan{Kind: planner.SingleStage}
	single := Timed(1, func() {
		for _, q := range qs {
			env.Execute(plan, q, 10, nil, executor.Options{Ef: 64}) //nolint:errcheck
		}
	})
	batched := Timed(1, func() {
		env.SearchBatch(plan, qs, 10, nil, executor.Options{Ef: 64}) //nolint:errcheck
	})
	t := NewTable(fmt.Sprintf("E10 batched queries (n=%d, batch=%d, hnsw ef=64)", n, len(qs)),
		"mode", "total", "per-query", "speedup")
	t.AddRow("one-at-a-time", single, single/time.Duration(len(qs)), 1.0)
	t.AddRow("batched", batched, batched/time.Duration(len(qs)), float64(single)/float64(batched))
	t.Print(w)
	fmt.Fprintln(w, "expected shape: batched >= 1x (speedup scales with cores; single-core machines see ~1x)")

	// Shared-bucket batching on IVF: each probed bucket is streamed
	// once for all interested queries (the commonality-exploiting
	// technique of [50, 79]), independent of core count.
	iv, err := ivf.Build(ds.Data, ds.Count, ds.Dim, ivf.Config{NList: 64, Seed: 1})
	if err != nil {
		fmt.Fprintf(w, "E10: %v\n", err)
		return
	}
	ivSingle := Timed(3, func() {
		for _, q := range qs {
			iv.Search(q, 10, index.Params{NProbe: 8}) //nolint:errcheck
		}
	})
	ivBatch := Timed(3, func() {
		iv.SearchBatch(qs, 10, index.Params{NProbe: 8}) //nolint:errcheck
	})
	t2 := NewTable(fmt.Sprintf("E10b IVF shared-bucket batch (nlist=64, nprobe=8, overlap=%.1f queries/bucket)",
		iv.BucketOverlap(qs, 8)),
		"mode", "total", "per-query", "speedup")
	t2.AddRow("one-at-a-time", ivSingle, ivSingle/time.Duration(len(qs)), 1.0)
	t2.AddRow("shared-bucket", ivBatch, ivBatch/time.Duration(len(qs)), float64(ivSingle)/float64(ivBatch))
	t2.Print(w)
	fmt.Fprintln(w, "expected shape: shared-bucket >= 1x even on one core (bucket rows stream through cache once)")
}

// E11 — distributed search: scatter-gather recall is preserved across
// shard counts; index-guided partitioning lets routed queries touch a
// fraction of shards (Section 2.3(2)).
func init() {
	register("E11", "scatter-gather preserves recall; cluster partitioning cuts fan-out", runE11)
}

func runE11(w io.Writer, scale int) {
	n := scaled(8000, scale, 2000)
	ds := dataset.Clustered(n, 32, 16, 0.4, 1)
	qs := ds.Queries(20, 0.05, 2)
	truth := dataset.GroundTruth(vec.SquaredL2, ds, qs, 10)

	build := func(p dist.Partition) *dist.Router {
		partData, partIDs := dist.SplitRows(ds.Data, ds.Count, ds.Dim, p)
		shards := make([]dist.Shard, p.Parts)
		for i := range shards {
			var idx index.Index
			if len(partIDs[i]) == 0 {
				idx, _ = index.NewFlat(nil, 0, ds.Dim, nil)
			} else {
				idx, _ = hnsw.Build(partData[i], len(partIDs[i]), ds.Dim, hnsw.Config{M: 8, Seed: 1})
			}
			shards[i] = dist.NewLocalShard(idx, partIDs[i])
		}
		return dist.NewRouter(shards, p.Centroids)
	}

	t := NewTable(fmt.Sprintf("E11 distributed search (n=%d, d=32, k=10, ef=64)", n),
		"partitioning", "shards", "probes", "recall@10", "mean.latency")
	for _, parts := range []int{1, 2, 4, 8} {
		router := build(dist.PartitionRandom(ds.Count, parts, 7))
		got := make([][]topk.Result, len(qs))
		mean := Timed(1, func() {
			for i, q := range qs {
				got[i], _, _ = router.Search(context.Background(), q, 10, 64)
			}
		}) / time.Duration(len(qs))
		t.AddRow("random", parts, parts, sharedRecall(got, truth), mean)
	}
	p, err := dist.PartitionClustered(ds.Data, ds.Count, ds.Dim, 8, 5)
	if err != nil {
		fmt.Fprintf(w, "E11: %v\n", err)
		return
	}
	router := build(p)
	for _, probes := range []int{1, 2, 4, 8} {
		got := make([][]topk.Result, len(qs))
		mean := Timed(1, func() {
			for i, q := range qs {
				got[i], _, _ = router.RoutedSearch(context.Background(), q, 10, 64, probes)
			}
		}) / time.Duration(len(qs))
		t.AddRow("cluster-guided", 8, probes, sharedRecall(got, truth), mean)
	}
	t.Print(w)
	fmt.Fprintln(w, "expected shape: random partitioning holds recall at every shard count; cluster-guided reaches near-full recall probing 2-4 of 8 shards")
}

// E12 — out-of-place updates: the LSM collection sustains interleaved
// writes and searches without index rebuild stalls; the rebuild-on-
// every-batch alternative pays a growing write cost (Section 2.3(3)).
func init() {
	register("E12", "out-of-place updates keep writes cheap vs rebuild-in-place", runE12)
}

func runE12(w io.Writer, scale int) {
	total := scaled(4000, scale, 1000)
	d := 16
	ds := dataset.Clustered(total, d, 8, 0.4, 1)
	batch := total / 8
	qs := ds.Queries(10, 0.05, 2)

	t := NewTable(fmt.Sprintf("E12 update strategies (%d inserts in %d batches, d=%d)", total, 8, d),
		"strategy", "ingest.time", "searches/batch.lat", "final.recall@10")

	// Strategy A: LSM out-of-place.
	lsmCol, err := lsm.New(lsm.Config{Dim: d, MemtableSize: batch, MaxSegments: 64})
	if err != nil {
		fmt.Fprintf(w, "E12: %v\n", err)
		return
	}
	var lsmSearch time.Duration
	lsmIngest := Timed(1, func() {
		for i := 0; i < total; i++ {
			lsmCol.Upsert(int64(i), ds.Row(i)) //nolint:errcheck
			if (i+1)%batch == 0 {
				lsmSearch += Timed(1, func() {
					for _, q := range qs {
						lsmCol.Search(q, 10, 64, nil) //nolint:errcheck
					}
				})
			}
		}
	})

	// Strategy B: rebuild the whole index after every batch
	// (in-place maintenance of a data-dependent index).
	var rebuildSearch time.Duration
	var idx index.Index
	rebuildIngest := Timed(1, func() {
		for b := 1; b <= 8; b++ {
			rows := b * batch
			idx, _ = hnsw.Build(ds.Data[:rows*d], rows, d, hnsw.Config{M: 8, Seed: 1})
			rebuildSearch += Timed(1, func() {
				for _, q := range qs {
					idx.Search(q, 10, index.Params{Ef: 64}) //nolint:errcheck
				}
			})
		}
	})

	truth := dataset.GroundTruth(vec.SquaredL2, ds, qs, 10)
	lsmGot := make([][]topk.Result, len(qs))
	for i, q := range qs {
		lsmGot[i], _ = lsmCol.Search(q, 10, 64, nil)
	}
	rebGot := make([][]topk.Result, len(qs))
	for i, q := range qs {
		rebGot[i], _ = idx.Search(q, 10, index.Params{Ef: 64})
	}
	t.AddRow("lsm out-of-place", lsmIngest-lsmSearch, lsmSearch/8, sharedRecall(lsmGot, truth))
	t.AddRow("rebuild per batch", rebuildIngest-rebuildSearch, rebuildSearch/8, sharedRecall(rebGot, truth))
	t.Print(w)
	fmt.Fprintln(w, "expected shape: lsm ingest time far below rebuild-per-batch; both end at comparable recall")
}
