package bench

import (
	"fmt"
	"io"
	"time"

	"vdbms/internal/dataset"
	"vdbms/internal/executor"
	"vdbms/internal/filter"
	"vdbms/internal/index"
	"vdbms/internal/index/hnsw"
	"vdbms/internal/planner"
	"vdbms/internal/topk"
)

// hybridEnv builds a clustered collection with a uniform integer
// attribute in [0, 1000) and an HNSW index.
func hybridEnv(n int) (*executor.Env, *dataset.Dataset, error) {
	ds := dataset.Clustered(n, 32, 16, 0.4, 1)
	h, err := hnsw.Build(ds.Data, ds.Count, ds.Dim, hnsw.Config{M: 8, Seed: 1})
	if err != nil {
		return nil, nil, err
	}
	attrs := filter.NewTable()
	if _, err := attrs.AddColumn("a", filter.Int64); err != nil {
		return nil, nil, err
	}
	for i := 0; i < n; i++ {
		// i*7919 mod 1000 decorrelates the attribute from both row
		// order and cluster structure.
		if err := attrs.AppendRow(map[string]filter.Value{"a": filter.IntV(int64(i * 7919 % 1000))}); err != nil {
			return nil, nil, err
		}
	}
	env, err := executor.NewEnv(ds.Data, ds.Count, ds.Dim, nil, h, attrs)
	return env, ds, err
}

func predLT(x int64) []filter.Predicate {
	return []filter.Predicate{{Column: "a", Op: filter.Lt, Value: filter.IntV(x)}}
}

// filteredTruth computes exact top-k among predicate survivors.
func filteredTruth(env *executor.Env, ds *dataset.Dataset, qs [][]float32, preds []filter.Predicate, k int) [][]topk.Result {
	out := make([][]topk.Result, len(qs))
	for i, q := range qs {
		res, _ := env.Execute(planner.Plan{Kind: planner.BruteForce}, q, k, preds, executor.Options{})
		out[i] = res
	}
	_ = ds
	return out
}

// E8 — hybrid plans across the selectivity spectrum: pre-filter wins
// when few rows survive, post-filter when most do, single-stage in
// between; the alpha over-fetch knob repairs post-filter shortfall
// (Section 2.3).
func init() {
	register("E8", "pre/post/single-stage filtering cross over with selectivity; alpha fixes shortfall", runE8)
}

func runE8(w io.Writer, scale int) {
	n := scaled(8000, scale, 2000)
	env, ds, err := hybridEnv(n)
	if err != nil {
		fmt.Fprintf(w, "E8: %v\n", err)
		return
	}
	qs := ds.Queries(20, 0.05, 2)
	k := 10
	t := NewTable(fmt.Sprintf("E8a hybrid plan sweep (n=%d, d=32, k=%d, ef=100)", n, k),
		"selectivity", "plan", "recall@10", "results", "mean.latency")
	for _, selPermille := range []int64{2, 10, 100, 300, 500, 900} {
		preds := predLT(selPermille)
		truth := filteredTruth(env, ds, qs, preds, k)
		for _, plan := range []planner.Plan{
			{Kind: planner.BruteForce},
			{Kind: planner.PreFilter},
			{Kind: planner.PostFilter, Alpha: 4},
			{Kind: planner.SingleStage},
		} {
			got := make([][]topk.Result, len(qs))
			mean := Timed(1, func() {
				for i, q := range qs {
					got[i], _ = env.Execute(plan, q, k, preds, executor.Options{Ef: 100})
				}
			}) / time.Duration(len(qs))
			var results float64
			for _, g := range got {
				results += float64(len(g))
			}
			t.AddRow(float64(selPermille)/1000, plan.Kind.String(),
				sharedRecall(got, truth), results/float64(len(qs)), mean)
		}
	}
	t.Print(w)
	fmt.Fprintln(w, "expected shape: pre_filter fastest+exact at low selectivity; post_filter returns <k there; at high selectivity post/single-stage beat brute force")

	// Alpha ablation for post-filter at a mid selectivity.
	t2 := NewTable("E8b post-filter over-fetch alpha (selectivity=0.1)",
		"alpha", "recall@10", "results", "shortfall.risk(model)")
	preds := predLT(100)
	truth := filteredTruth(env, ds, qs, preds, k)
	for _, alpha := range []int{1, 2, 4, 8, 16, 32} {
		got := make([][]topk.Result, len(qs))
		for i, q := range qs {
			got[i], _ = env.Execute(planner.Plan{Kind: planner.PostFilter, Alpha: alpha}, q, k, preds, executor.Options{Ef: 4 * alpha * k})
		}
		var results float64
		for _, g := range got {
			results += float64(len(g))
		}
		t2.AddRow(alpha, sharedRecall(got, truth), results/float64(len(qs)),
			planner.ShortfallRisk(alpha, k, 0.1))
	}
	t2.Print(w)
	fmt.Fprintln(w, "expected shape: results/query and recall rise toward k as alpha grows; model risk hits 0 near alpha=10")

	// E8c: offline blocking — the collection pre-partitioned on the
	// predicate attribute ([6, 79]) vs online bitmap blocking, for an
	// equality predicate.
	part, err := executor.BuildPartitioned(ds.Data, ds.Count, ds.Dim, envTable(env), "a",
		func(data []float32, n, d int) (index.Index, error) {
			if n == 0 {
				return index.NewFlat(nil, 0, d, nil)
			}
			return hnsw.Build(data, n, d, hnsw.Config{M: 8, Seed: 1})
		})
	if err != nil {
		fmt.Fprintf(w, "E8c: %v\n", err)
		return
	}
	eqPred := []filter.Predicate{{Column: "a", Op: filter.Eq, Value: filter.IntV(7)}}
	truthEq := filteredTruth(env, ds, qs, eqPred, k)
	online := make([][]topk.Result, len(qs))
	onlineLat := Timed(1, func() {
		for i, q := range qs {
			online[i], _ = env.Execute(planner.Plan{Kind: planner.PreFilter}, q, k, eqPred, executor.Options{Ef: 100})
		}
	}) / time.Duration(len(qs))
	offline := make([][]topk.Result, len(qs))
	offlineLat := Timed(1, func() {
		for i, q := range qs {
			offline[i], _ = part.SearchEq(q, k, 7, index.Params{Ef: 100})
		}
	}) / time.Duration(len(qs))
	t3 := NewTable("E8c offline vs online blocking (a = 7, selectivity ~0.001)",
		"blocking", "recall@10", "mean.latency")
	t3.AddRow("online (bitmap pre-filter)", sharedRecall(online, truthEq), onlineLat)
	t3.AddRow("offline (pre-partitioned)", sharedRecall(offline, truthEq), offlineLat)
	t3.Print(w)
	fmt.Fprintln(w, "expected shape: offline blocking much faster at equal recall (no bitmap build, no blocked traversal) — its cost moved to build time and rigidity")
}

// envTable exposes the attribute table of the hybrid env.
func envTable(e *executor.Env) *filter.Table { return e.Attrs }

// E12b — plan selection quality: the cost-based optimizer's plan vs
// the per-selectivity oracle (the fastest plan measured), reported as
// latency regret (Section 2.3, cost-based selection; open problem 3).
func init() {
	register("E12b", "cost-based plan selection tracks the measured-best plan", runE12b)
}

func runE12b(w io.Writer, scale int) {
	n := scaled(8000, scale, 2000)
	env, ds, err := hybridEnv(n)
	if err != nil {
		fmt.Fprintf(w, "E12b: %v\n", err)
		return
	}
	qs := ds.Queries(15, 0.05, 4)
	k := 10
	plans := []planner.Plan{
		{Kind: planner.BruteForce},
		{Kind: planner.PreFilter},
		{Kind: planner.PostFilter, Alpha: 8},
		{Kind: planner.SingleStage},
	}
	t := NewTable(fmt.Sprintf("E12b plan-picker regret (n=%d)", n),
		"selectivity", "oracle.plan", "oracle.lat", "cost.plan", "cost.lat", "rule.plan", "rule.lat")
	for _, selPermille := range []int64{2, 20, 100, 500, 900} {
		preds := predLT(selPermille)
		sel := float64(selPermille) / 1000
		lat := map[string]time.Duration{}
		var bestPlan string
		var bestLat time.Duration
		for _, plan := range plans {
			// A (c,k)-search must return k results when they exist, so
			// the oracle disqualifies plans that starve: a plan that is
			// "fast" because it found almost nothing is not a winner.
			var returned int
			mean := Timed(1, func() {
				for _, q := range qs {
					res, _ := env.Execute(plan, q, k, preds, executor.Options{Ef: 100})
					returned += len(res)
				}
			}) / time.Duration(len(qs))
			if float64(returned) < 0.9*float64(k*len(qs)) {
				continue
			}
			lat[plan.Kind.String()] = mean
			if bestPlan == "" || mean < bestLat {
				bestPlan, bestLat = plan.Kind.String(), mean
			}
		}
		penv := planner.Env{N: n, K: k, Selectivity: sel, HasIndex: true, Alpha: 8, IndexComps: 800}
		costPlan := planner.CostBased(penv)
		rulePlan := planner.RuleBased(penv)
		costLat, ok := lat[costPlan.Kind.String()]
		if !ok {
			costLat = measurePlan(env, qs, k, preds, costPlan)
		}
		ruleLat, ok := lat[rulePlan.Kind.String()]
		if !ok {
			ruleLat = measurePlan(env, qs, k, preds, rulePlan)
		}
		t.AddRow(sel, bestPlan, bestLat, costPlan.Kind.String(), costLat, rulePlan.Kind.String(), ruleLat)
	}
	t.Print(w)
	fmt.Fprintln(w, "expected shape: cost/rule picks match or stay within a small factor of the oracle at the extremes")
}

func measurePlan(env *executor.Env, qs [][]float32, k int, preds []filter.Predicate, plan planner.Plan) time.Duration {
	return Timed(1, func() {
		for _, q := range qs {
			env.Execute(plan, q, k, preds, executor.Options{Ef: 100}) //nolint:errcheck
		}
	}) / time.Duration(len(qs))
}
