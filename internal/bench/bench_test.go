package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestTableFormatting(t *testing.T) {
	tab := NewTable("demo", "a", "longheader", "c")
	tab.AddRow(1, 2.5, "x")
	tab.AddRow("wide-cell-value", float32(0.125), time.Millisecond)
	var buf bytes.Buffer
	tab.Print(&buf)
	out := buf.String()
	if !strings.Contains(out, "== demo ==") || !strings.Contains(out, "longheader") {
		t.Fatalf("output:\n%s", out)
	}
	if !strings.Contains(out, "wide-cell-value") || !strings.Contains(out, "1ms") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestTimedAndQPS(t *testing.T) {
	d := Timed(0, func() { time.Sleep(time.Millisecond) })
	if d < time.Millisecond {
		t.Fatalf("Timed = %v", d)
	}
	if QPS(0) != 0 {
		t.Fatal("QPS(0) should be 0")
	}
	if q := QPS(time.Millisecond); q < 999 || q > 1001 {
		t.Fatalf("QPS = %v", q)
	}
}

func TestRegistryComplete(t *testing.T) {
	// Lexicographic order, as All() sorts by ID string.
	want := []string{"E10", "E11", "E12", "E12b", "E13", "E1a", "E1b", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("have %d experiments, want %d", len(all), len(want))
	}
	for i, e := range all {
		if e.ID != want[i] {
			t.Fatalf("experiment %d = %s, want %s", i, e.ID, want[i])
		}
		if e.Claim == "" || e.Run == nil {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
	if _, ok := ByID("E8"); !ok {
		t.Fatal("ByID failed")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("ByID should miss")
	}
}

func TestScaled(t *testing.T) {
	if scaled(100, 2, 50) != 200 || scaled(100, 0, 500) != 500 {
		t.Fatal("scaled wrong")
	}
}

// Smoke-run every experiment at a tiny scale: they must complete and
// produce their table without panicking. This is the integration test
// of the whole stack (every index, the planner, the executor, disk
// formats, distribution, and the LSM) in one pass.
func TestAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test skipped in -short mode")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			e.Run(&buf, 0) // scale 0 clamps every workload to its floor
			out := buf.String()
			if !strings.Contains(out, "==") {
				t.Fatalf("%s produced no table:\n%s", e.ID, out)
			}
			if strings.Contains(out, "error") {
				t.Fatalf("%s reported an error:\n%s", e.ID, out)
			}
		})
	}
}
