// Package bench implements the experiment harness (deliverable d):
// for every experiment in DESIGN.md's per-experiment index it
// generates the workload, runs the sweep, and prints the table the
// paper's claim predicts. cmd/vdbms-bench is the CLI front end;
// bench_test.go wires the hot kernels into testing.B.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Table accumulates rows and renders aligned text.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; values are formatted with %v ("%.4g" for
// floats).
func (t *Table) AddRow(vals ...any) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", x)
		case float32:
			row[i] = fmt.Sprintf("%.4g", x)
		case time.Duration:
			row[i] = x.Round(time.Microsecond).String()
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// Print renders the table.
func (t *Table) Print(w io.Writer) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	fmt.Fprintf(w, "\n== %s ==\n", t.title)
	var sb strings.Builder
	for i, h := range t.headers {
		fmt.Fprintf(&sb, "%-*s  ", widths[i], h)
	}
	fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
	fmt.Fprintln(w, strings.Repeat("-", len(strings.TrimRight(sb.String(), " "))))
	for _, row := range t.rows {
		sb.Reset()
		for i, cell := range row {
			wd := 0
			if i < len(widths) {
				wd = widths[i]
			}
			fmt.Fprintf(&sb, "%-*s  ", wd, cell)
		}
		fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
	}
}

// Timed measures fn over iters runs and returns mean latency.
func Timed(iters int, fn func()) time.Duration {
	if iters <= 0 {
		iters = 1
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		fn()
	}
	return time.Since(start) / time.Duration(iters)
}

// QPS converts a mean per-query latency to queries/second.
func QPS(mean time.Duration) float64 {
	if mean <= 0 {
		return 0
	}
	return float64(time.Second) / float64(mean)
}

// Experiment is one runnable experiment.
type Experiment struct {
	ID    string
	Claim string
	Run   func(w io.Writer, scale int)
}

var experiments []Experiment

func register(id, claim string, run func(w io.Writer, scale int)) {
	experiments = append(experiments, Experiment{ID: id, Claim: claim, Run: run})
}

// All returns the experiments sorted by ID.
func All() []Experiment {
	out := append([]Experiment(nil), experiments...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID finds one experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range experiments {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// scaled multiplies a base size by the scale factor with a floor.
func scaled(base, scale, floor int) int {
	n := base * scale
	if n < floor {
		n = floor
	}
	return n
}
