package bench

import (
	"fmt"
	"io"
	"time"

	"vdbms/internal/dataset"
	"vdbms/internal/index"
	"vdbms/internal/index/hnsw"
	"vdbms/internal/index/ivf"
	"vdbms/internal/index/kdtree"
	"vdbms/internal/index/knng"
	"vdbms/internal/index/lsh"
	"vdbms/internal/index/nsg"
	"vdbms/internal/index/nsw"
	"vdbms/internal/index/rptree"
	"vdbms/internal/index/spectral"
	"vdbms/internal/quant"
	"vdbms/internal/topk"
	"vdbms/internal/vec"
)

// recallQPS runs all queries through idx and reports mean recall@k and
// QPS.
func recallQPS(idx index.Index, qs [][]float32, truth [][]topk.Result, k int, p index.Params) (float64, float64) {
	got := make([][]topk.Result, len(qs))
	mean := Timed(1, func() {
		for i, q := range qs {
			got[i], _ = idx.Search(q, k, p)
		}
	})
	return sharedRecall(got, truth), QPS(mean / time.Duration(len(qs)) * 1)
}

// E2 — LSH: more tables L raise recall at higher probe cost; larger K
// sharpens buckets (fewer candidates, lower recall) (Section 2.2(1)).
func init() { register("E2", "LSH L and K trade recall vs probe cost", runE2) }

func runE2(w io.Writer, scale int) {
	n := scaled(5000, scale, 1000)
	ds := dataset.Clustered(n, 32, 16, 0.4, 1)
	qs := ds.Queries(30, 0.05, 2)
	truth := dataset.GroundTruth(vec.SquaredL2, ds, qs, 10)
	t := NewTable(fmt.Sprintf("E2 LSH sweep (p-stable, n=%d, d=32, k=10)", n),
		"L", "K", "recall@10", "cand.frac", "QPS")
	for _, cfg := range []struct{ l, k int }{
		{1, 8}, {2, 8}, {4, 8}, {8, 8}, {16, 8},
		{8, 2}, {8, 4}, {8, 16},
	} {
		l, err := lsh.Build(ds.Data, ds.Count, ds.Dim, lsh.Config{
			L: cfg.l, K: cfg.k, Family: lsh.PStable, W: 8, Seed: 3,
		})
		if err != nil {
			fmt.Fprintf(w, "E2 build error: %v\n", err)
			return
		}
		var cands int
		for _, q := range qs {
			cands += l.CandidateCount(q, 0)
		}
		rec, qps := recallQPS(l, qs, truth, 10, index.Params{})
		t.AddRow(cfg.l, cfg.k, rec, float64(cands)/float64(len(qs))/float64(n), qps)
	}
	t.Print(w)
	fmt.Fprintln(w, "expected shape: recall rises with L; candidate fraction falls as K rises")

	// Learning-to-hash comparison point: spectral hashing learns its
	// partition from the data's PCA structure instead of random
	// projections (Section 2.2(2)).
	sh, err := spectral.Build(ds.Data, ds.Count, ds.Dim, spectral.Config{Bits: 14})
	if err != nil {
		fmt.Fprintf(w, "E2 spectral: %v\n", err)
		return
	}
	t2 := NewTable("E2b learned hashing (spectral, 14 bits) vs budget", "probe.budget", "recall@10", "QPS")
	for _, ef := range []int{64, 256, 1024} {
		rec, qps := recallQPS(sh, qs, truth, 10, index.Params{Ef: ef})
		t2.AddRow(ef, rec, qps)
	}
	t2.Print(w)
	fmt.Fprintln(w, "expected shape: learned partition reaches LSH-grade recall with one table (no L-fold replication)")
}

// E3 — IVF: nprobe sweeps recall against scanned fraction
// (Section 2.2(2)).
func init() { register("E3", "IVF nprobe trades recall vs scanned fraction", runE3) }

func runE3(w io.Writer, scale int) {
	n := scaled(10000, scale, 2000)
	ds := dataset.Clustered(n, 64, 32, 0.4, 1)
	qs := ds.Queries(30, 0.05, 2)
	truth := dataset.GroundTruth(vec.SquaredL2, ds, qs, 10)
	iv, err := ivf.Build(ds.Data, ds.Count, ds.Dim, ivf.Config{NList: 64, Seed: 3})
	if err != nil {
		fmt.Fprintf(w, "E3 build error: %v\n", err)
		return
	}
	t := NewTable(fmt.Sprintf("E3 IVFFlat nprobe sweep (n=%d, d=64, nlist=64)", n),
		"nprobe", "recall@10", "scanned.frac", "QPS")
	for _, np := range []int{1, 2, 4, 8, 16, 32, 64} {
		rec, qps := recallQPS(iv, qs, truth, 10, index.Params{NProbe: np})
		var frac float64
		for _, q := range qs {
			frac += iv.ScannedFraction(q, np)
		}
		t.AddRow(np, rec, frac/float64(len(qs)), qps)
	}
	t.Print(w)
	fmt.Fprintln(w, "expected shape: recall -> 1 as nprobe -> nlist; scanned fraction grows linearly; QPS falls")
}

// E4 — quantization: compression vs reconstruction error vs recall;
// OPQ <= PQ error on correlated data; ADC beats SDC recall
// (Section 2.2(3)).
func init() {
	register("E4", "quantization compresses at bounded recall loss; OPQ<=PQ; ADC>SDC", runE4)
}

func runE4(w io.Writer, scale int) {
	n := scaled(4000, scale, 1000)
	ds := dataset.LowRank(n, 64, 8, 0.05, 1)
	qs := ds.Queries(25, 0.05, 2)
	truth := dataset.GroundTruth(vec.SquaredL2, ds, qs, 10)
	t := NewTable(fmt.Sprintf("E4 quantizer comparison (low-rank, n=%d, d=64)", n),
		"method", "compression", "MSE", "recall@10")

	// SQ8.
	sq, err := quant.TrainSQ(ds.Data, ds.Count, ds.Dim)
	if err != nil {
		fmt.Fprintf(w, "E4: %v\n", err)
		return
	}
	sqCodes := make([]byte, ds.Count*ds.Dim)
	for i := 0; i < ds.Count; i++ {
		if _, err := sq.Encode(ds.Row(i), sqCodes[i*ds.Dim:(i+1)*ds.Dim]); err != nil {
			fmt.Fprintf(w, "E4: %v\n", err)
			return
		}
	}
	sqRecall := quantRecall(qs, truth, ds.Count, func(q []float32, i int) float32 {
		d, _ := sq.DistanceL2(q, sqCodes[i*ds.Dim:(i+1)*ds.Dim])
		return d
	})
	t.AddRow("SQ8", sq.CompressionRatio(), sq.MSE(ds.Data, ds.Count), sqRecall)

	// PQ / OPQ with ADC and SDC.
	pq, err := quant.TrainPQ(ds.Data, ds.Count, ds.Dim, quant.PQConfig{M: 8, Ks: 64, Seed: 3, MaxIter: 15})
	if err != nil {
		fmt.Fprintf(w, "E4: %v\n", err)
		return
	}
	pqCodes := make([]byte, ds.Count*pq.M)
	for i := 0; i < ds.Count; i++ {
		pq.Encode(ds.Row(i), pqCodes[i*pq.M:(i+1)*pq.M])
	}
	adcRecall := quantRecallTab(qs, truth, ds.Count, pq, pqCodes)
	t.AddRow("PQ8x64 (ADC)", pq.CompressionRatio(), pq.MSE(ds.Data, ds.Count), adcRecall)

	sdc := pq.SDC()
	sdcRecall := quantRecall(qs, truth, ds.Count, func(q []float32, i int) float32 {
		qcode := pq.Encode(q, nil)
		return sdc.Distance(qcode, pqCodes[i*pq.M:(i+1)*pq.M])
	})
	t.AddRow("PQ8x64 (SDC)", pq.CompressionRatio(), pq.MSE(ds.Data, ds.Count), sdcRecall)

	opq, err := quant.TrainOPQ(ds.Data, ds.Count, ds.Dim, quant.OPQConfig{
		PQConfig: quant.PQConfig{M: 8, Ks: 64, Seed: 3, MaxIter: 15}, Iters: 5,
	})
	if err != nil {
		fmt.Fprintf(w, "E4: %v\n", err)
		return
	}
	opqCodes := make([]byte, ds.Count*opq.PQ.M)
	for i := 0; i < ds.Count; i++ {
		opq.Encode(ds.Row(i), opqCodes[i*opq.PQ.M:(i+1)*opq.PQ.M])
	}
	opqRecall := quantRecall(qs, truth, ds.Count, func(q []float32, i int) float32 {
		return opq.ADC(q).Distance(opqCodes[i*opq.PQ.M : (i+1)*opq.PQ.M])
	})
	t.AddRow("OPQ8x64 (ADC)", opq.PQ.CompressionRatio(), opq.MSE(ds.Data, ds.Count), opqRecall)

	rq, err := quant.TrainRQ(ds.Data, ds.Count, ds.Dim, quant.RQConfig{Levels: 8, Ks: 64, Seed: 3, MaxIter: 15})
	if err != nil {
		fmt.Fprintf(w, "E4: %v\n", err)
		return
	}
	rqCodes := make([][]byte, ds.Count)
	for i := 0; i < ds.Count; i++ {
		rqCodes[i] = rq.Encode(ds.Row(i), nil)
	}
	rqRecall := quantRecall(qs, truth, ds.Count, func(q []float32, i int) float32 {
		return rq.DistanceL2(q, rqCodes[i])
	})
	t.AddRow("RQ8x64 (residual)", rq.CompressionRatio(), rq.MSE(ds.Data, ds.Count), rqRecall)
	t.Print(w)
	fmt.Fprintln(w, "expected shape: OPQ MSE <= PQ MSE; ADC recall >= SDC recall; RQ competitive at same code size; SQ8 highest recall at lowest compression")
}

func quantRecall(qs [][]float32, truth [][]topk.Result, n int, dist func(q []float32, i int) float32) float64 {
	got := make([][]topk.Result, len(qs))
	for qi, q := range qs {
		c := topk.NewCollector(10)
		for i := 0; i < n; i++ {
			c.Push(int64(i), dist(q, i))
		}
		got[qi] = c.Results()
	}
	return sharedRecall(got, truth)
}

func quantRecallTab(qs [][]float32, truth [][]topk.Result, n int, pq *quant.PQ, codes []byte) float64 {
	got := make([][]topk.Result, len(qs))
	for qi, q := range qs {
		tab := pq.ADC(q)
		c := topk.NewCollector(10)
		for i := 0; i < n; i++ {
			c.Push(int64(i), tab.Distance(codes[i*pq.M:(i+1)*pq.M]))
		}
		got[qi] = c.Results()
	}
	return sharedRecall(got, truth)
}

// E5 — trees: deterministic k-d degrades with dimension; randomized
// forests adapt to intrinsic dimensionality; more trees raise recall
// (Section 2.2, tree-based indexes).
func init() { register("E5", "randomized tree forests adapt where deterministic k-d degrades", runE5) }

func runE5(w io.Writer, scale int) {
	n := scaled(4000, scale, 1000)
	budget := 512
	t := NewTable(fmt.Sprintf("E5 tree indexes (low-rank data, n=%d, leaf budget=%d)", n, budget),
		"dim", "index", "trees", "recall@10", "QPS")
	for _, d := range []int{8, 32, 128} {
		ds := dataset.LowRank(n, d, 6, 0.05, int64(d))
		qs := ds.Queries(25, 0.05, 2)
		truth := dataset.GroundTruth(vec.SquaredL2, ds, qs, 10)
		add := func(name string, idx index.Index, trees int) {
			rec, qps := recallQPS(idx, qs, truth, 10, index.Params{Ef: budget})
			t.AddRow(d, name, trees, rec, qps)
		}
		kd, _ := kdtree.Build(ds.Data, n, d, kdtree.Config{Mode: kdtree.Median, Seed: 1})
		add("kdtree", kd, 1)
		pca, _ := kdtree.Build(ds.Data, n, d, kdtree.Config{Mode: kdtree.PCA, Seed: 1})
		add("pcatree", pca, 1)
		for _, trees := range []int{1, 8, 32} {
			rp, _ := rptree.Build(ds.Data, n, d, rptree.Config{Mode: rptree.RP, Trees: trees, Seed: 1})
			add("rptree", rp, trees)
		}
		an, _ := rptree.Build(ds.Data, n, d, rptree.Config{Mode: rptree.Annoy, Trees: 8, Seed: 1})
		add("annoy", an, 8)
	}
	t.Print(w)
	fmt.Fprintln(w, "expected shape: kdtree recall drops with dim; rptree recall grows with trees; annoy ~ rptree")
}

// E6 — graphs: build cost, degree, and the recall/QPS frontier of
// KNNG vs NSW vs HNSW vs NSG vs Vamana; HNSW heuristic vs naive
// ablation (Section 2.2, graph-based indexes).
func init() { register("E6", "graph indexes dominate; hierarchy and pruning help", runE6) }

func runE6(w io.Writer, scale int) {
	n := scaled(5000, scale, 1500)
	ds := dataset.Clustered(n, 32, 16, 0.4, 1)
	qs := ds.Queries(30, 0.05, 2)
	truth := dataset.GroundTruth(vec.SquaredL2, ds, qs, 10)
	t := NewTable(fmt.Sprintf("E6 graph indexes (n=%d, d=32, k=10)", n),
		"index", "build", "avg.deg", "ef", "recall@10", "QPS")
	type entry struct {
		name  string
		idx   index.Index
		build time.Duration
		deg   float64
	}
	var entries []entry
	{
		start := time.Now()
		kg, _ := knng.Build(ds.Data, n, ds.Dim, knng.Config{K: 16, MaxIter: 8, Seed: 1, NumEntry: 32})
		entries = append(entries, entry{"knng", kg, time.Since(start), avgDeg(kg.Adjacency())})
	}
	{
		start := time.Now()
		g, _ := nsw.Build(ds.Data, n, ds.Dim, nsw.Config{M: 8})
		entries = append(entries, entry{"nsw", g, time.Since(start), g.AvgDegree()})
	}
	{
		start := time.Now()
		h, _ := hnsw.Build(ds.Data, n, ds.Dim, hnsw.Config{M: 8, Seed: 1})
		entries = append(entries, entry{"hnsw", h, time.Since(start), h.AvgBaseDegree()})
	}
	{
		start := time.Now()
		h, _ := hnsw.Build(ds.Data, n, ds.Dim, hnsw.Config{M: 8, Seed: 1, NaiveSelection: true})
		entries = append(entries, entry{"hnsw-naive", h, time.Since(start), h.AvgBaseDegree()})
	}
	{
		start := time.Now()
		g, _ := nsg.Build(ds.Data, n, ds.Dim, nsg.Config{Variant: nsg.NSG, R: 12, Seed: 1})
		entries = append(entries, entry{"nsg", g, time.Since(start), g.AvgDegree()})
	}
	{
		start := time.Now()
		g, _ := nsg.Build(ds.Data, n, ds.Dim, nsg.Config{Variant: nsg.Vamana, R: 12, Alpha: 1.2, Seed: 1})
		entries = append(entries, entry{"vamana", g, time.Since(start), g.AvgDegree()})
	}
	{
		start := time.Now()
		g, _ := nsg.Build(ds.Data, n, ds.Dim, nsg.Config{Variant: nsg.FANNG, R: 12, Trials: 8, Seed: 1})
		entries = append(entries, entry{"fanng", g, time.Since(start), g.AvgDegree()})
	}
	for _, e := range entries {
		for _, ef := range []int{16, 64, 200} {
			rec, qps := recallQPS(e.idx, qs, truth, 10, index.Params{Ef: ef})
			t.AddRow(e.name, e.build, e.deg, ef, rec, qps)
		}
	}
	t.Print(w)
	fmt.Fprintln(w, "expected shape: hnsw/nsg/vamana reach high recall at low ef; nsw needs larger ef; knng trails; pruned degree < nsw degree")
}

func avgDeg(adj [][]int32) float64 {
	total := 0
	for _, l := range adj {
		total += len(l)
	}
	if len(adj) == 0 {
		return 0
	}
	return float64(total) / float64(len(adj))
}
