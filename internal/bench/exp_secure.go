package bench

import (
	"fmt"
	"io"
	"time"

	"vdbms/internal/dataset"
	"vdbms/internal/secure"
	"vdbms/internal/topk"
	"vdbms/internal/vec"
)

// E13 — secure k-NN (open problem 2.6(4)): ASPE returns the exact
// k-NN from an untrusted server; the price is the (d+1)-dimensional
// float64 encrypted scan plus per-query token encryption.
func init() {
	register("E13", "ASPE secure k-NN is exact; overhead is the encrypted-domain scan", runE13)
}

func runE13(w io.Writer, scale int) {
	n := scaled(4000, scale, 1000)
	t := NewTable(fmt.Sprintf("E13 secure k-NN vs plaintext exact scan (n=%d, k=10)", n),
		"dim", "recall@10", "plain.scan", "secure.scan", "token.enc", "overhead")
	for _, d := range []int{16, 64} {
		ds := dataset.Clustered(n, d, 8, 0.4, 1)
		qs := ds.Queries(15, 0.05, 2)
		truth := dataset.GroundTruth(vec.SquaredL2, ds, qs, 10)

		key, err := secure.NewKey(d, 7)
		if err != nil {
			fmt.Fprintf(w, "E13: %v\n", err)
			return
		}
		srv := secure.NewServer(d)
		for i := 0; i < n; i++ {
			enc, err := key.EncryptVector(ds.Row(i))
			if err != nil {
				fmt.Fprintf(w, "E13: %v\n", err)
				return
			}
			srv.Add(int64(i), enc) //nolint:errcheck
		}
		// Plaintext exact scan baseline.
		plain := Timed(1, func() {
			for _, q := range qs {
				c := topk.NewCollector(10)
				for i := 0; i < n; i++ {
					c.Push(int64(i), vec.SquaredL2(q, ds.Row(i)))
				}
				c.Results()
			}
		}) / time.Duration(len(qs))
		// Secure path: token + encrypted scan.
		tokens := make([][]float64, len(qs))
		tokenTime := Timed(1, func() {
			for i, q := range qs {
				tokens[i], _ = key.EncryptQuery(q)
			}
		}) / time.Duration(len(qs))
		got := make([][]topk.Result, len(qs))
		secureTime := Timed(1, func() {
			for i, tok := range tokens {
				got[i], _ = srv.TopK(tok, 10)
			}
		}) / time.Duration(len(qs))
		t.AddRow(d, sharedRecall(got, truth), plain, secureTime, tokenTime,
			float64(secureTime+tokenTime)/float64(plain))
	}
	t.Print(w)
	fmt.Fprintln(w, "expected shape: recall exactly 1.0 at every dim; overhead a small constant (float64 + 1 extra dim)")
}
