package memory

import (
	"sync/atomic"
	"testing"
)

// stopped returns a manager with its actor halted so tests drive the
// ladder deterministically through Set/Add/Step.
func stopped(budget int64) *Manager {
	m := New(budget)
	m.Close()
	return m
}

func TestStageForLadder(t *testing.T) {
	const b = 1000
	cases := []struct {
		used int64
		cur  Stage
		want Stage
	}{
		{0, StageNormal, StageNormal},
		{799, StageNormal, StageNormal},
		{800, StageNormal, StageDropCaches},
		{899, StageNormal, StageDropCaches},
		{900, StageNormal, StageEvict},
		{999, StageNormal, StageEvict},
		{1000, StageNormal, StageShed},
		{5000, StageNormal, StageShed},
		// De-escalation is hysteretic: within 3% below the rung we'd
		// leave, hold position.
		{990, StageShed, StageShed},
		{969, StageShed, StageEvict},
		{880, StageEvict, StageEvict},
		{869, StageEvict, StageDropCaches},
		{780, StageDropCaches, StageDropCaches},
		{769, StageDropCaches, StageNormal},
		// Escalation has no hysteresis.
		{900, StageDropCaches, StageEvict},
		{1000, StageEvict, StageShed},
	}
	for _, c := range cases {
		if got := stageFor(c.used, b, c.cur); got != c.want {
			t.Errorf("stageFor(%d, %d, %v) = %v, want %v", c.used, b, c.cur, got, c.want)
		}
	}
}

func TestAccountingAndSyncEscalation(t *testing.T) {
	m := stopped(1000)
	a := m.Register("a")
	b := m.Register("b")
	a.Set(CatVectors, 400)
	b.Set(CatIndex, 300)
	if got := m.Resident(); got != 700 {
		t.Fatalf("resident %d, want 700", got)
	}
	if st := m.Stage(); st != StageNormal {
		t.Fatalf("stage %v, want normal", st)
	}
	// The Set that crosses the threshold flips the stage before it
	// returns — callers over budget see Shed synchronously.
	b.Add(CatIndex, 350)
	if st := m.Stage(); st != StageShed {
		t.Fatalf("stage %v after crossing budget, want shed", st)
	}
	if !m.ShouldShed() {
		t.Fatal("ShouldShed false at shed stage")
	}
	// Unregister subtracts the account's bytes and de-escalates.
	m.Unregister("b")
	if got := m.Resident(); got != 400 {
		t.Fatalf("resident %d after unregister, want 400", got)
	}
	if st := m.Stage(); st != StageNormal {
		t.Fatalf("stage %v after unregister, want normal", st)
	}
}

func TestUnlimitedBudgetNeverEscalates(t *testing.T) {
	m := stopped(0)
	a := m.Register("a")
	a.Set(CatVectors, 1<<40)
	if st := m.Stage(); st != StageNormal {
		t.Fatalf("stage %v with no budget, want normal", st)
	}
	if m.ShouldShed() {
		t.Fatal("shedding with no budget")
	}
}

func TestStepDropCachesLatch(t *testing.T) {
	m := stopped(1000)
	a := m.Register("a")
	var drops atomic.Int64
	a.OnDropCaches(func() { drops.Add(1) })
	a.Set(CatPageCache, 850)
	m.Step()
	m.Step()
	m.Step()
	if got := drops.Load(); got != 1 {
		t.Fatalf("drop hook ran %d times at a held rung, want 1 (latched)", got)
	}
	// Fall below the rung, then climb back: the latch re-arms.
	a.Set(CatPageCache, 100)
	m.Step()
	a.Set(CatPageCache, 850)
	m.Step()
	if got := drops.Load(); got != 2 {
		t.Fatalf("drop hook ran %d times after re-escalation, want 2", got)
	}
}

func TestStepEvictsColdestFirst(t *testing.T) {
	m := stopped(1000)
	cold := m.Register("cold")
	hot := m.Register("hot")
	var evicted []string
	evict := func(a *Account, free int64) func() error {
		return func() error {
			evicted = append(evicted, a.Name())
			a.Add(CatVectors, -free)
			a.SetEvicted(true)
			return nil
		}
	}
	cold.Set(CatVectors, 500)
	cold.OnEvict(evict(cold, 500))
	hot.Set(CatVectors, 450)
	hot.OnEvict(evict(hot, 450))
	cold.Touch()
	hot.Touch() // hot touched last → cold sorts first

	m.Step()
	if len(evicted) != 1 || evicted[0] != "cold" {
		t.Fatalf("evicted %v, want [cold] (stop once under the evict threshold)", evicted)
	}
	if got := m.Evictions.Load(); got != 1 {
		t.Fatalf("eviction counter %d, want 1", got)
	}
	if st := m.Stage(); st != StageNormal {
		t.Fatalf("stage %v after remediation freed memory, want normal", st)
	}
}

func TestStepSkipsEvictedAndFailingAccounts(t *testing.T) {
	m := stopped(1000)
	done := m.Register("done")
	done.Set(CatIndex, 600) // structure bytes stay after eviction
	done.SetEvicted(true)
	done.OnEvict(func() error { t.Fatal("re-evicted an mmap-tier account"); return nil })
	stuck := m.Register("stuck")
	stuck.Set(CatVectors, 600)
	calls := 0
	stuck.OnEvict(func() error { calls++; return errTest })
	m.Step()
	if calls != 1 {
		t.Fatalf("failing evict hook called %d times, want 1", calls)
	}
	if got := m.Evictions.Load(); got != 0 {
		t.Fatalf("eviction counter %d after failures only, want 0", got)
	}
	// Over budget with nothing evictable: the ladder stays at Shed
	// rather than thrashing.
	if st := m.Stage(); st != StageShed {
		t.Fatalf("stage %v, want shed", st)
	}
}

type testErr string

func (e testErr) Error() string { return string(e) }

const errTest = testErr("evict refused")

func TestPromote(t *testing.T) {
	m := stopped(1000)
	a := m.Register("a")
	promoted := false
	a.OnPromote(func() error {
		promoted = true
		a.SetEvicted(false)
		return nil
	})
	// Not evicted: promote is a no-op.
	if err := m.Promote("a"); err != nil || promoted {
		t.Fatalf("promote on heap-tier account: err=%v promoted=%v", err, promoted)
	}
	a.SetEvicted(true)
	if err := m.Promote("a"); err != nil {
		t.Fatal(err)
	}
	if !promoted || a.Evicted() {
		t.Fatalf("promoted=%v evicted=%v after Promote", promoted, a.Evicted())
	}
	if got := m.Promotions.Load(); got != 1 {
		t.Fatalf("promotion counter %d, want 1", got)
	}
	if err := m.Promote("missing"); err != nil {
		t.Fatalf("promote on unknown account: %v", err)
	}
}

func TestRegisterIdempotentAndStatus(t *testing.T) {
	m := stopped(1 << 20)
	a1 := m.Register("same")
	a2 := m.Register("same")
	if a1 != a2 {
		t.Fatal("Register returned two accounts for one name")
	}
	a1.Set(CatVectors, 4096)
	a1.Set(CatQuantCodes, 512)
	st := m.Status()
	if st.BudgetBytes != 1<<20 || st.ResidentBytes != 4608 || st.Stage != "normal" {
		t.Fatalf("status = %+v", st)
	}
	cs, ok := st.Collections["same"]
	if !ok {
		t.Fatal("status missing the account")
	}
	if cs.Tier != "heap" || cs.ByCategory["vectors"] != 4096 || cs.ByCategory["quant_codes"] != 512 {
		t.Fatalf("collection status = %+v", cs)
	}
	a1.SetEvicted(true)
	if got := m.Status().Collections["same"].Tier; got != "mmap" {
		t.Fatalf("tier %q after eviction, want mmap", got)
	}
}

func TestReadRSS(t *testing.T) {
	// On Linux this must report something plausible; elsewhere 0.
	rss := ReadRSS()
	if rss < 0 {
		t.Fatalf("negative RSS %d", rss)
	}
	if rss > 0 && rss < 1<<20 {
		t.Fatalf("implausibly small RSS %d for a running Go test binary", rss)
	}
}
