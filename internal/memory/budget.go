// Package memory implements the process-wide memory budget manager of
// the serving tier. Owners (collections, LSM trees, WAL bindings,
// page caches) register accounts and push-account their resident
// bytes by category; the manager compares the accounted total against
// a configurable budget and walks a graceful-degradation ladder
// instead of letting the kernel OOM-kill the process:
//
//	Normal      → everything heap-resident, full caches
//	DropCaches  → page/scorer caches released
//	Evict       → coldest collections' float columns moved to the
//	              mmap tier (quantized codes stay hot; exact re-rank
//	              faults pages in on demand)
//	Shed        → reads/writes refused with 503 + Retry-After
//
// Escalation is immediate (an accounting change that crosses a
// threshold flips the stage before the caller returns); de-escalation
// is hysteretic so the ladder does not flap around a threshold.
// Eviction work runs on the manager's goroutine, never on the
// accounting caller's — owners may account while holding their own
// locks, and eviction calls back into owners.
package memory

import (
	"math"
	"os"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vdbms/internal/obs"
)

// Category partitions an account's resident bytes by what holds them.
type Category int

const (
	CatVectors    Category = iota // float32 columns (heap tier only)
	CatIndex                      // graph/tree/IVF structures
	CatQuantCodes                 // quantized code blocks (never evicted)
	CatWALBuffers                 // WAL write buffers
	CatPageCache                  // disk-store page caches
	numCategories
)

// String returns the metric label for the category.
func (c Category) String() string {
	switch c {
	case CatVectors:
		return "vectors"
	case CatIndex:
		return "index"
	case CatQuantCodes:
		return "quant_codes"
	case CatWALBuffers:
		return "wal_buffers"
	case CatPageCache:
		return "page_cache"
	}
	return "unknown"
}

// Stage is a rung of the degradation ladder.
type Stage int32

const (
	StageNormal Stage = iota
	StageDropCaches
	StageEvict
	StageShed
)

// String returns the metric label for the stage.
func (s Stage) String() string {
	switch s {
	case StageNormal:
		return "normal"
	case StageDropCaches:
		return "drop_caches"
	case StageEvict:
		return "evict"
	case StageShed:
		return "shed"
	}
	return "unknown"
}

// Ladder thresholds as fractions of the budget. Escalate at the
// fraction; de-escalate only once usage falls hysteresis below it.
const (
	dropFrac   = 0.80
	evictFrac  = 0.90
	shedFrac   = 1.00
	hysteresis = 0.03
)

// Account tracks one owner's resident bytes. All methods are safe for
// concurrent use; Set/Add may be called under the owner's locks.
type Account struct {
	name  string
	mgr   *Manager
	bytes [numCategories]atomic.Int64
	// lastTouch is the manager's logical clock value at the owner's
	// most recent query — the coldness signal for eviction order.
	lastTouch atomic.Int64
	// evicted marks accounts currently serving from the mmap tier.
	evicted atomic.Bool

	hookMu    sync.Mutex
	onDrop    func()       // release caches (DropCaches rung)
	onEvict   func() error // move float column to mmap (Evict rung)
	onPromote func() error // optional: restore column to heap
}

// Name returns the account's registered name.
func (a *Account) Name() string { return a.name }

// Set records the absolute resident byte count for one category.
func (a *Account) Set(cat Category, n int64) {
	old := a.bytes[cat].Swap(n)
	a.mgr.adjust(n - old)
}

// Add adjusts one category by delta bytes.
func (a *Account) Add(cat Category, delta int64) {
	if delta == 0 {
		return
	}
	a.bytes[cat].Add(delta)
	a.mgr.adjust(delta)
}

// Get returns the current byte count for one category.
func (a *Account) Get(cat Category) int64 { return a.bytes[cat].Load() }

// Resident sums all categories.
func (a *Account) Resident() int64 {
	var total int64
	for c := range a.bytes {
		total += a.bytes[c].Load()
	}
	return total
}

// Touch marks the account recently used (called per query). Purely a
// logical clock — no time syscall on the hot path.
func (a *Account) Touch() {
	a.lastTouch.Store(a.mgr.clock.Add(1))
}

// Evicted reports whether the account's column lives in the mmap tier.
func (a *Account) Evicted() bool { return a.evicted.Load() }

// CountPromotion records a promotion the owner performed on its own
// (write paths promote before mutating a read-only mapping), keeping
// the manager's counters in lockstep with hook-driven moves.
func (a *Account) CountPromotion() {
	a.mgr.Promotions.Add(1)
	obs.MemPromotions.Inc()
}

// SetEvicted records tier residency (set by the owner after it moves
// its column, including evictions it performs on its own).
func (a *Account) SetEvicted(v bool) { a.evicted.Store(v) }

// OnDropCaches registers the cache-release hook.
func (a *Account) OnDropCaches(fn func()) {
	a.hookMu.Lock()
	a.onDrop = fn
	a.hookMu.Unlock()
}

// OnEvict registers the evict-to-mmap hook. Accounts without one are
// skipped by the Evict rung.
func (a *Account) OnEvict(fn func() error) {
	a.hookMu.Lock()
	a.onEvict = fn
	a.hookMu.Unlock()
}

// OnPromote registers the optional mmap→heap promotion hook.
func (a *Account) OnPromote(fn func() error) {
	a.hookMu.Lock()
	a.onPromote = fn
	a.hookMu.Unlock()
}

// Manager is the process-wide budget authority. The zero value is not
// usable; call New.
type Manager struct {
	budget   atomic.Int64
	resident atomic.Int64
	clock    atomic.Int64
	stage    atomic.Int32

	mu       sync.Mutex
	accounts map[string]*Account

	wake   chan struct{}
	done   chan struct{}
	exited chan struct{}
	stop   sync.Once

	// cachesDropped latches the DropCaches sweep so the rung acts once
	// per escalation instead of per tick.
	cachesDropped bool

	// RetryAfter is what shed responses should advertise.
	RetryAfter time.Duration

	// Counters for /debug/stats (metrics are updated in lockstep).
	Evictions  atomic.Int64
	Promotions atomic.Int64
	CacheDrops atomic.Int64
	Sheds      atomic.Int64
}

// DefaultBudget returns GOMEMLIMIT when one is set, else 0
// (unlimited). This makes `-mem-budget 0` mean "inherit the runtime
// limit", matching how operators already bound the process.
func DefaultBudget() int64 {
	lim := debug.SetMemoryLimit(-1)
	if lim > 0 && lim < math.MaxInt64 {
		return lim
	}
	return 0
}

// New creates a manager enforcing budget bytes (0 = unlimited; the
// ladder stays at Normal and only observability runs) and starts its
// background actor.
func New(budget int64) *Manager {
	m := &Manager{
		accounts:   make(map[string]*Account),
		wake:       make(chan struct{}, 1),
		done:       make(chan struct{}),
		exited:     make(chan struct{}),
		RetryAfter: 1 * time.Second,
	}
	m.budget.Store(budget)
	obs.MemBudgetBytes.Set(float64(budget))
	go m.loop()
	return m
}

// Close stops the background actor and waits for it to exit: once
// Close returns, no remediation pass is running or will run, so owners
// can safely tear down the state the hooks reach into.
func (m *Manager) Close() {
	m.stop.Do(func() { close(m.done) })
	<-m.exited
}

// Budget returns the configured budget in bytes.
func (m *Manager) Budget() int64 { return m.budget.Load() }

// Resident returns the accounted resident total.
func (m *Manager) Resident() int64 { return m.resident.Load() }

// Stage returns the current ladder position.
func (m *Manager) Stage() Stage { return Stage(m.stage.Load()) }

// ShouldShed reports whether new work must be refused. The caller
// counts the shed (CountShed) only when it actually refuses.
func (m *Manager) ShouldShed() bool { return m.Stage() >= StageShed }

// CountShed records one refused request.
func (m *Manager) CountShed() {
	m.Sheds.Add(1)
	obs.MemShedTotal.Inc()
}

// Register creates (or returns) the account for name.
func (m *Manager) Register(name string) *Account {
	m.mu.Lock()
	defer m.mu.Unlock()
	if a, ok := m.accounts[name]; ok {
		return a
	}
	a := &Account{name: name, mgr: m}
	a.lastTouch.Store(m.clock.Add(1))
	m.accounts[name] = a
	return a
}

// Unregister removes an account, subtracting its bytes.
func (m *Manager) Unregister(name string) {
	m.mu.Lock()
	a, ok := m.accounts[name]
	delete(m.accounts, name)
	m.mu.Unlock()
	if ok {
		m.adjust(-a.Resident())
	}
}

// Accounts returns a stable-ordered snapshot of account names.
func (m *Manager) Accounts() []*Account {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Account, 0, len(m.accounts))
	for _, a := range m.accounts {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// adjust applies a resident-bytes delta and recomputes the stage.
// Escalation takes effect here, synchronously, so a write that pushes
// the process over budget sees Shed before it completes; the actual
// remediation work is done by the actor goroutine.
func (m *Manager) adjust(delta int64) {
	used := m.resident.Add(delta)
	obs.MemResidentBytes.Set(float64(used))
	m.recompute(used)
}

func (m *Manager) recompute(used int64) {
	b := m.budget.Load()
	if b <= 0 {
		return
	}
	cur := Stage(m.stage.Load())
	next := stageFor(used, b, cur)
	if next != cur {
		if m.stage.CompareAndSwap(int32(cur), int32(next)) {
			obs.MemStage.Set(float64(next))
			obs.MemStageChanges.With(next.String()).Inc()
		}
	}
	if next >= StageDropCaches {
		m.kick()
	}
}

// stageFor maps usage to a rung with hysteresis on the way down.
func stageFor(used, budget int64, cur Stage) Stage {
	frac := float64(used) / float64(budget)
	var next Stage
	switch {
	case frac >= shedFrac:
		next = StageShed
	case frac >= evictFrac:
		next = StageEvict
	case frac >= dropFrac:
		next = StageDropCaches
	default:
		next = StageNormal
	}
	if next >= cur {
		return next
	}
	// De-escalate only when clearly below the rung we'd leave.
	var leaving float64
	switch cur {
	case StageShed:
		leaving = shedFrac
	case StageEvict:
		leaving = evictFrac
	case StageDropCaches:
		leaving = dropFrac
	default:
		return next
	}
	if frac >= leaving-hysteresis {
		return cur
	}
	return next
}

func (m *Manager) kick() {
	select {
	case m.wake <- struct{}{}:
	default:
	}
}

// loop is the actor: it performs the remediation work of whatever
// rung the ladder sits at, plus periodic /proc sampling.
func (m *Manager) loop() {
	defer close(m.exited)
	t := time.NewTicker(500 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-m.done:
			return
		case <-m.wake:
		case <-t.C:
		}
		// A wake and Close can be ready simultaneously and select picks
		// at random; re-check so a closed manager never runs another pass.
		select {
		case <-m.done:
			return
		default:
		}
		m.Step()
		sampleProc()
	}
}

// Step synchronously performs one remediation pass for the current
// rung. Exposed so tests can drive the ladder deterministically.
func (m *Manager) Step() {
	st := m.Stage()
	if st >= StageDropCaches && !m.cachesDropped {
		m.dropAllCaches()
		m.cachesDropped = true
	}
	if st < StageDropCaches {
		m.cachesDropped = false
	}
	if st >= StageEvict {
		m.evictColdest()
	}
	// Publish per-category totals while we're here.
	m.publishCategories()
	// Remediation may have freed memory; re-evaluate the rung.
	m.recompute(m.resident.Load())
}

func (m *Manager) dropAllCaches() {
	for _, a := range m.Accounts() {
		a.hookMu.Lock()
		fn := a.onDrop
		a.hookMu.Unlock()
		if fn != nil {
			fn()
		}
	}
	m.CacheDrops.Add(1)
	obs.MemCacheDrops.Inc()
}

// evictColdest evicts accounts coldest-first until usage falls below
// the evict threshold (or nothing evictable remains).
func (m *Manager) evictColdest() {
	b := m.budget.Load()
	if b <= 0 {
		return
	}
	target := int64(evictFrac * float64(b))
	cands := m.Accounts()
	sort.Slice(cands, func(i, j int) bool {
		return cands[i].lastTouch.Load() < cands[j].lastTouch.Load()
	})
	for _, a := range cands {
		if m.resident.Load() < target {
			return
		}
		if a.Evicted() {
			continue
		}
		a.hookMu.Lock()
		fn := a.onEvict
		a.hookMu.Unlock()
		if fn == nil {
			continue
		}
		if err := fn(); err != nil {
			continue // owner keeps heap residency; try the next one
		}
		// The hook sets the evicted bit itself, under the owner's lock,
		// so write-path promotions racing this pass cannot be clobbered.
		m.Evictions.Add(1)
		obs.MemEvictions.Inc()
	}
}

// Promote asks the named account's owner to restore its column to the
// heap tier (used by write paths and by operators via the API).
func (m *Manager) Promote(name string) error {
	m.mu.Lock()
	a := m.accounts[name]
	m.mu.Unlock()
	if a == nil || !a.Evicted() {
		return nil
	}
	a.hookMu.Lock()
	fn := a.onPromote
	a.hookMu.Unlock()
	if fn == nil {
		return nil
	}
	if err := fn(); err != nil {
		return err
	}
	// The hook clears the evicted bit under the owner's lock.
	m.Promotions.Add(1)
	obs.MemPromotions.Inc()
	return nil
}

func (m *Manager) publishCategories() {
	var byCat [numCategories]int64
	for _, a := range m.Accounts() {
		for c := range byCat {
			byCat[c] += a.bytes[c].Load()
		}
	}
	for c := Category(0); c < numCategories; c++ {
		obs.MemCategoryBytes.With(c.String()).Set(float64(byCat[c]))
	}
}

// Status is the /debug/stats projection of the manager.
type Status struct {
	BudgetBytes   int64                       `json:"budget_bytes"`
	ResidentBytes int64                       `json:"resident_bytes"`
	Stage         string                      `json:"stage"`
	Evictions     int64                       `json:"evictions"`
	Promotions    int64                       `json:"promotions"`
	CacheDrops    int64                       `json:"cache_drops"`
	Sheds         int64                       `json:"sheds"`
	RSSBytes      int64                       `json:"rss_bytes"`
	Collections   map[string]CollectionStatus `json:"collections"`
}

// CollectionStatus is one account's projection.
type CollectionStatus struct {
	ResidentBytes int64            `json:"resident_bytes"`
	Tier          string           `json:"tier"`
	ByCategory    map[string]int64 `json:"by_category"`
}

// Status snapshots the manager for /debug/stats.
func (m *Manager) Status() Status {
	st := Status{
		BudgetBytes:   m.Budget(),
		ResidentBytes: m.Resident(),
		Stage:         m.Stage().String(),
		Evictions:     m.Evictions.Load(),
		Promotions:    m.Promotions.Load(),
		CacheDrops:    m.CacheDrops.Load(),
		Sheds:         m.Sheds.Load(),
		RSSBytes:      ReadRSS(),
		Collections:   map[string]CollectionStatus{},
	}
	for _, a := range m.Accounts() {
		cs := CollectionStatus{
			ResidentBytes: a.Resident(),
			Tier:          "heap",
			ByCategory:    map[string]int64{},
		}
		if a.Evicted() {
			cs.Tier = "mmap"
		}
		for c := Category(0); c < numCategories; c++ {
			cs.ByCategory[c.String()] = a.Get(c)
		}
		st.Collections[a.Name()] = cs
	}
	return st
}

// ReadRSS returns the process resident set size in bytes from
// /proc/self/statm, or 0 where /proc is unavailable.
func ReadRSS() int64 {
	b, err := os.ReadFile("/proc/self/statm")
	if err != nil {
		return 0
	}
	fields := strings.Fields(string(b))
	if len(fields) < 2 {
		return 0
	}
	pages, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return 0
	}
	return pages * int64(os.Getpagesize())
}

// readMajorFaults returns cumulative major page faults from
// /proc/self/stat (field 12, majflt), or 0 where unavailable.
func readMajorFaults() int64 {
	b, err := os.ReadFile("/proc/self/stat")
	if err != nil {
		return 0
	}
	s := string(b)
	// comm can contain spaces; skip past the closing paren.
	i := strings.LastIndexByte(s, ')')
	if i < 0 {
		return 0
	}
	fields := strings.Fields(s[i+1:])
	// fields[0] is state (field 3); majflt is field 12 → index 9.
	if len(fields) < 10 {
		return 0
	}
	v, err := strconv.ParseInt(fields[9], 10, 64)
	if err != nil {
		return 0
	}
	return v
}

func sampleProc() {
	if rss := ReadRSS(); rss > 0 {
		obs.MemRSSBytes.Set(float64(rss))
	}
	obs.MemMajorFaults.Set(float64(readMajorFaults()))
}
