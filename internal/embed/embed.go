// Package embed provides a built-in embedding model for *indirect*
// data manipulation (Section 2.1(1)): users hand the VDBMS entities
// (text), and the system owns the entity -> vector mapping. The model
// is a feature-hashing bag-of-words/char-trigram embedder — the
// strongest text representation available without external model
// weights — chosen so that lexically similar texts land near each
// other under cosine distance.
package embed

import (
	"hash/fnv"
	"math"
	"strings"
	"unicode"
)

// TextEmbedder hashes token unigrams and character trigrams into a
// fixed-dimension vector, L2-normalized so cosine and inner product
// agree.
type TextEmbedder struct {
	dim int
	// trigrams toggles character trigram features (on by default),
	// which give partial-match robustness for typos/morphology.
	trigrams bool
}

// NewTextEmbedder creates an embedder producing dim-dimensional
// vectors. dim must be positive; 128-512 works well.
func NewTextEmbedder(dim int) *TextEmbedder {
	if dim <= 0 {
		panic("embed: dimension must be positive")
	}
	return &TextEmbedder{dim: dim, trigrams: true}
}

// Dim returns the embedding dimensionality.
func (e *TextEmbedder) Dim() int { return e.dim }

// Embed maps text to its vector. Deterministic: equal texts embed
// identically.
func (e *TextEmbedder) Embed(text string) []float32 {
	v := make([]float32, e.dim)
	tokens := Tokenize(text)
	for _, tok := range tokens {
		e.add(v, "w:"+tok, 1)
		if e.trigrams {
			padded := "^" + tok + "$"
			for i := 0; i+3 <= len(padded); i++ {
				e.add(v, "t:"+padded[i:i+3], 0.5)
			}
		}
	}
	// L2 normalize; empty text stays the zero vector.
	var norm float64
	for _, x := range v {
		norm += float64(x) * float64(x)
	}
	if norm > 0 {
		inv := float32(1 / math.Sqrt(norm))
		for i := range v {
			v[i] *= inv
		}
	}
	return v
}

// add hashes the feature into two buckets with a sign hash (the
// standard feature-hashing construction, reducing collision bias).
func (e *TextEmbedder) add(v []float32, feature string, weight float32) {
	h := fnv.New64a()
	h.Write([]byte(feature))
	sum := h.Sum64()
	idx := int(sum % uint64(e.dim))
	sign := float32(1)
	if (sum>>63)&1 == 1 {
		sign = -1
	}
	v[idx] += sign * weight
}

// Tokenize lowercases and splits on non-letter/digit runs.
func Tokenize(text string) []string {
	return strings.FieldsFunc(strings.ToLower(text), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
}
