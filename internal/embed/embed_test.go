package embed

import (
	"testing"

	"vdbms/internal/vec"
)

func TestDeterministicAndNormalized(t *testing.T) {
	e := NewTextEmbedder(128)
	a := e.Embed("the quick brown fox")
	b := e.Embed("the quick brown fox")
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("embedding not deterministic")
		}
	}
	if n := vec.Norm(a); n < 0.999 || n > 1.001 {
		t.Fatalf("norm = %v", n)
	}
	if e.Dim() != 128 || len(a) != 128 {
		t.Fatal("dim wrong")
	}
}

func TestSimilarTextsCloser(t *testing.T) {
	e := NewTextEmbedder(256)
	base := e.Embed("vector database management systems")
	near := e.Embed("vector database management system")    // morphology
	medium := e.Embed("database systems for vector search") // shared words
	far := e.Embed("banana pancake recipe with maple syrup")

	dNear := vec.CosineDistance(base, near)
	dMedium := vec.CosineDistance(base, medium)
	dFar := vec.CosineDistance(base, far)
	if !(dNear < dMedium && dMedium < dFar) {
		t.Fatalf("ordering violated: near=%v medium=%v far=%v", dNear, dMedium, dFar)
	}
}

func TestTypoRobustnessViaTrigrams(t *testing.T) {
	e := NewTextEmbedder(256)
	base := e.Embed("approximate nearest neighbor")
	typo := e.Embed("aproximate nearest neighbor")
	unrelated := e.Embed("completely different words here")
	if vec.CosineDistance(base, typo) >= vec.CosineDistance(base, unrelated) {
		t.Fatal("typo should stay closer than unrelated text")
	}
}

func TestEmptyText(t *testing.T) {
	e := NewTextEmbedder(64)
	v := e.Embed("")
	for _, x := range v {
		if x != 0 {
			t.Fatal("empty text should embed to zero vector")
		}
	}
}

func TestTokenize(t *testing.T) {
	got := Tokenize("Hello, World! 42nd-street")
	want := []string{"hello", "world", "42nd", "street"}
	if len(got) != len(want) {
		t.Fatalf("tokens = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tokens = %v", got)
		}
	}
}

func TestPanicsOnBadDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewTextEmbedder(0)
}
