package tuner

import (
	"sync"
	"testing"
)

func TestKnobFor(t *testing.T) {
	cases := map[string]Knob{
		"hnsw": KnobEf, "nsw": KnobEf, "vamana": KnobEf, "annoy": KnobEf,
		"flat": KnobEf, "": KnobEf,
		"ivfflat": KnobNProbe, "ivfpq": KnobNProbe, "ivfsq8": KnobNProbe,
		"lsh": KnobNProbe, "spann": KnobNProbe,
	}
	for kind, want := range cases {
		if got := KnobFor(kind); got != want {
			t.Errorf("KnobFor(%q) = %v, want %v", kind, got, want)
		}
	}
}

func TestBucketOf(t *testing.T) {
	// k within (2^(b-1), 2^b] shares a bucket; 10 and 100 must not.
	if bucketOf(10) != bucketOf(12) {
		t.Errorf("k=10 and k=12 should share a bucket")
	}
	if bucketOf(10) == bucketOf(100) {
		t.Errorf("k=10 and k=100 must not share a bucket")
	}
	if bucketOf(1) != 0 {
		t.Errorf("bucketOf(1) = %d, want 0", bucketOf(1))
	}
	if b := bucketOf(1 << 30); b != maxBuckets-1 {
		t.Errorf("huge k bucket = %d, want clamp to %d", b, maxBuckets-1)
	}
}

// A cold frontier must resolve to the ladder maximum (safe default),
// and stay there until some rung accumulates MinSamples.
func TestResolveSafeDefaultWhenCold(t *testing.T) {
	f := New("hnsw", Config{MinSamples: 8})
	p, trusted := f.Resolve(0.95, 10)
	if trusted || p != f.MaxParam() {
		t.Fatalf("cold Resolve = (%d, %v), want (%d, false)", p, trusted, f.MaxParam())
	}
	// Under-sampled observations must not flip trust.
	f.Observe(10, []Observation{{Param: 32, Recall: 0.99, Comps: 100, Samples: 4}})
	p, trusted = f.Resolve(0.95, 10)
	if trusted || p != f.MaxParam() {
		t.Fatalf("under-sampled Resolve = (%d, %v), want (%d, false)", p, trusted, f.MaxParam())
	}
	f.Observe(10, []Observation{{Param: 32, Recall: 0.99, Comps: 100, Samples: 4}})
	p, trusted = f.Resolve(0.95, 10)
	if !trusted || p != 32 {
		t.Fatalf("warmed Resolve = (%d, %v), want (32, true)", p, trusted)
	}
}

// Resolve must return the cheapest trusted rung that meets the target,
// not just any rung that does.
func TestResolveCheapestMeetingTarget(t *testing.T) {
	f := New("ivfflat", Config{MinSamples: 4})
	if f.Knob() != KnobNProbe {
		t.Fatalf("ivfflat knob = %v, want nprobe", f.Knob())
	}
	f.Observe(10, []Observation{
		{Param: 1, Recall: 0.52, Comps: 100, Samples: 8},
		{Param: 4, Recall: 0.81, Comps: 400, Samples: 8},
		{Param: 16, Recall: 0.97, Comps: 1600, Samples: 8},
		{Param: 64, Recall: 0.999, Comps: 6400, Samples: 8},
	})
	if p, ok := f.Resolve(0.95, 10); !ok || p != 16 {
		t.Errorf("Resolve(0.95) = (%d, %v), want (16, true)", p, ok)
	}
	if p, ok := f.Resolve(0.80, 10); !ok || p != 4 {
		t.Errorf("Resolve(0.80) = (%d, %v), want (4, true)", p, ok)
	}
	// Target above everything observed: safe default, untrusted.
	if p, ok := f.Resolve(0.9999, 10); ok || p != 128 {
		t.Errorf("Resolve(0.9999) = (%d, %v), want (128, false)", p, ok)
	}
}

// Buckets are independent: observations at k=10 say nothing about k=100.
func TestBucketIsolation(t *testing.T) {
	f := New("hnsw", Config{MinSamples: 4})
	f.Observe(10, []Observation{{Param: 64, Recall: 0.97, Comps: 500, Samples: 8}})
	if p, ok := f.Resolve(0.95, 10); !ok || p != 64 {
		t.Fatalf("k=10 Resolve = (%d, %v), want (64, true)", p, ok)
	}
	if p, ok := f.Resolve(0.95, 100); ok || p != f.MaxParam() {
		t.Fatalf("k=100 Resolve = (%d, %v), want safe default untrusted", p, ok)
	}
}

// Hysteresis: once resolved at a rung, a cheaper rung whose recall
// only barely grazes the target must not steal the resolution; it
// needs Margin headroom. Upward moves apply immediately.
func TestResolveHysteresis(t *testing.T) {
	f := New("hnsw", Config{MinSamples: 4, Margin: 0.02})
	f.Observe(10, []Observation{
		{Param: 32, Recall: 0.92, Comps: 300, Samples: 8},
		{Param: 64, Recall: 0.97, Comps: 600, Samples: 8},
	})
	if p, ok := f.Resolve(0.95, 10); !ok || p != 64 {
		t.Fatalf("initial Resolve = (%d, %v), want (64, true)", p, ok)
	}
	// Rung 32 drifts up to 0.951 — above target but inside the margin.
	// EWMA with decay 0.5 from 0.92: feed 0.982 to land at 0.951.
	f.Observe(10, []Observation{{Param: 32, Recall: 0.982, Comps: 300, Samples: 8}})
	if p, ok := f.Resolve(0.95, 10); !ok || p != 64 {
		t.Fatalf("graze Resolve = (%d, %v), want hold at (64, true)", p, ok)
	}
	// Rung 32 clears target+margin decisively: move down is allowed.
	f.Observe(10, []Observation{{Param: 32, Recall: 0.999, Comps: 300, Samples: 8}})
	if p, ok := f.Resolve(0.95, 10); !ok || p != 32 {
		t.Fatalf("clear Resolve = (%d, %v), want (32, true)", p, ok)
	}
	// Rung 32 collapses: upward move is immediate, no margin needed.
	f.Observe(10, []Observation{{Param: 32, Recall: 0.2, Comps: 300, Samples: 64}})
	f.Observe(10, []Observation{{Param: 32, Recall: 0.2, Comps: 300, Samples: 64}})
	if p, ok := f.Resolve(0.95, 10); !ok || p != 64 {
		t.Fatalf("collapse Resolve = (%d, %v), want (64, true)", p, ok)
	}
}

func TestBestRecall(t *testing.T) {
	f := New("hnsw", Config{MinSamples: 4})
	if _, ok := f.BestRecall(10); ok {
		t.Fatal("cold BestRecall should be untrusted")
	}
	f.Observe(10, []Observation{
		{Param: 32, Recall: 0.80, Comps: 300, Samples: 8},
		{Param: 512, Recall: 0.91, Comps: 5000, Samples: 8},
	})
	r, ok := f.BestRecall(10)
	if !ok || r < 0.90 || r > 0.92 {
		t.Fatalf("BestRecall = (%v, %v), want (~0.91, true)", r, ok)
	}
}

// EWMA: repeated observations converge the estimate toward the new
// steady state rather than averaging over all history forever.
func TestObserveEWMAConverges(t *testing.T) {
	f := New("hnsw", Config{MinSamples: 1, Decay: 0.5})
	f.Observe(10, []Observation{{Param: 64, Recall: 0.50, Comps: 500, Samples: 8}})
	for i := 0; i < 8; i++ {
		f.Observe(10, []Observation{{Param: 64, Recall: 0.98, Comps: 500, Samples: 8}})
	}
	pts := f.BucketSnapshot(10)
	i := rungIndex(EfLadder, 64)
	if pts[i].Recall < 0.97 {
		t.Fatalf("EWMA recall = %v after 8 passes at 0.98, want > 0.97", pts[i].Recall)
	}
}

// Concurrent Resolve against Observe must be race-free (run under -race).
func TestConcurrentResolveObserve(t *testing.T) {
	f := New("hnsw", Config{MinSamples: 2})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				f.Resolve(0.95, 10)
				f.BestRecall(10)
			}
		}()
	}
	for i := 0; i < 200; i++ {
		f.Observe(10, []Observation{{Param: 32, Recall: 0.96, Comps: 300, Samples: 4}})
	}
	close(stop)
	wg.Wait()
}
