// Package tuner maintains per-collection recall-vs-cost frontiers for
// ANN search parameters and resolves a target recall to the cheapest
// parameter value that meets it.
//
// A Frontier tracks one knob (Ef for graph/tree indexes, NProbe for
// partition/hash indexes) over a fixed ladder of candidate values.
// Observations arrive from a background pass that replays sampled
// production queries against exact ground truth (the same machinery as
// the online recall auditor) at every ladder rung, so each rung
// accumulates an EWMA of measured recall and distance-computation
// cost, bucketed by k (power-of-two buckets: a k=10 query and a k=12
// query share a bucket, k=100 does not).
//
// Resolution is lock-free on the query path: Observe publishes an
// immutable table through an atomic pointer, and Resolve reads it.
// Two guards keep resolution safe and stable:
//
//   - Safe default while under-observed: a rung is only trusted once
//     it has MinSamples replayed queries behind it. Until some trusted
//     rung meets the target, Resolve reports the ladder maximum — the
//     most expensive, highest-recall setting — so an SLO is never
//     missed because the tuner has not warmed up yet.
//   - Hysteresis against oscillation: moving to a cheaper rung than
//     the last resolution requires the cheaper rung to clear the
//     target by Margin. Noise that bounces a rung's recall across the
//     bare target therefore cannot flap the resolved parameter; moves
//     to a more expensive rung apply immediately (recall is at risk).
package tuner

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// Knob identifies which index search parameter a frontier tunes.
type Knob int

const (
	// KnobEf tunes the candidate-list width of graph/tree indexes.
	KnobEf Knob = iota
	// KnobNProbe tunes the partitions-probed count of IVF-family
	// (and hash-bucket) indexes.
	KnobNProbe
)

func (k Knob) String() string {
	if k == KnobNProbe {
		return "nprobe"
	}
	return "ef"
}

// KnobFor maps a registered index kind to the knob its search path
// actually consumes. Partition and hash indexes read Params.NProbe;
// everything else (graph and tree families, flat fallbacks) reads
// Params.Ef.
func KnobFor(kind string) Knob {
	switch kind {
	case "ivfflat", "ivfpq", "ivfsq8", "lsh", "spann":
		return KnobNProbe
	}
	return KnobEf
}

// EfLadder and NProbeLadder are the candidate values a frontier
// explores. Geometric spacing keeps replay cost bounded while covering
// the useful range: below the bottom rung recall collapses, above the
// top rung cost grows with no recall left to buy.
var (
	EfLadder     = []int{8, 16, 32, 64, 128, 256, 512}
	NProbeLadder = []int{1, 2, 4, 8, 16, 32, 64, 128}
)

// Ladder returns the candidate values for a knob. The returned slice
// is shared; callers must not mutate it.
func Ladder(k Knob) []int {
	if k == KnobNProbe {
		return NProbeLadder
	}
	return EfLadder
}

// maxBuckets covers k up to 2^19; searches beyond that share the top
// bucket rather than growing the table.
const maxBuckets = 20

// bucketOf maps k to its power-of-two bucket: k in (2^(i-1), 2^i]
// lands in bucket i, so k=8,9..16 share bucket 4 and k=10 and k=100
// do not share one.
func bucketOf(k int) int {
	if k <= 1 {
		return 0
	}
	b := bits.Len(uint(k - 1))
	if b >= maxBuckets {
		return maxBuckets - 1
	}
	return b
}

// Point is the accumulated estimate for one (k-bucket, ladder rung).
type Point struct {
	Recall  float64 // EWMA of replayed recall@k at this rung
	Comps   float64 // EWMA of distance computations per query
	Samples int     // total replayed queries behind the estimate
}

// Observation carries one tuning pass's aggregate for a single rung.
type Observation struct {
	Param   int     // ladder value the replay ran at
	Recall  float64 // mean recall@k across the pass's samples
	Comps   float64 // mean distance computations per query
	Samples int     // queries aggregated into this observation
}

// Config bounds when estimates are trusted and how they move.
type Config struct {
	// MinSamples is the replay count a rung needs before Resolve
	// trusts it. Zero means DefaultMinSamples.
	MinSamples int
	// Margin is the recall headroom a cheaper rung must clear over
	// the target before Resolve will move down to it. Zero means
	// DefaultMargin.
	Margin float64
	// Decay is the EWMA weight of a new observation against the
	// standing estimate, in (0, 1]. Zero means DefaultDecay.
	Decay float64
}

// Defaults for Config zero values.
const (
	DefaultMinSamples = 8
	DefaultMargin     = 0.01
	DefaultDecay      = 0.5
)

func (c Config) normalized() Config {
	if c.MinSamples <= 0 {
		c.MinSamples = DefaultMinSamples
	}
	if c.Margin <= 0 {
		c.Margin = DefaultMargin
	}
	if c.Decay <= 0 || c.Decay > 1 {
		c.Decay = DefaultDecay
	}
	return c
}

// table is the immutable resolution state published to readers.
type table struct {
	buckets [maxBuckets][]Point // nil until the bucket has data
}

// Frontier is the recall-vs-cost frontier for one (collection, index
// kind) pair. Observe is called from the tuning pass under the
// frontier's own lock; Resolve is lock-free and safe from any number
// of concurrent query goroutines.
type Frontier struct {
	kind string
	knob Knob
	cfg  Config

	mu      sync.Mutex
	buckets [maxBuckets][]Point // mutable master copy, guarded by mu

	tab  atomic.Pointer[table]
	last [maxBuckets]atomic.Int32 // hysteresis: last resolved rung+1 (0 = none)
}

// New returns an empty frontier for an index kind. The knob is derived
// from the kind via KnobFor.
func New(kind string, cfg Config) *Frontier {
	f := &Frontier{kind: kind, knob: KnobFor(kind), cfg: cfg.normalized()}
	f.tab.Store(&table{})
	return f
}

// Kind returns the index kind the frontier was built for. A stale
// frontier (index swapped to a different kind) must not be consulted.
func (f *Frontier) Kind() string { return f.kind }

// Knob returns which search parameter this frontier tunes.
func (f *Frontier) Knob() Knob { return f.knob }

// MaxParam is the ladder maximum — the safe default while the frontier
// is under-observed.
func (f *Frontier) MaxParam() int {
	l := Ladder(f.knob)
	return l[len(l)-1]
}

// MinSamples reports the trust threshold the frontier runs with.
func (f *Frontier) MinSamples() int { return f.cfg.MinSamples }

// Observe folds one tuning pass's per-rung aggregates for queries of
// the given k into the frontier and publishes a fresh resolution
// table. Observations with unknown ladder values are ignored.
func (f *Frontier) Observe(k int, obs []Observation) {
	ladder := Ladder(f.knob)
	b := bucketOf(k)

	f.mu.Lock()
	defer f.mu.Unlock()
	pts := f.buckets[b]
	if pts == nil {
		pts = make([]Point, len(ladder))
		f.buckets[b] = pts
	}
	for _, o := range obs {
		if o.Samples <= 0 {
			continue
		}
		i := rungIndex(ladder, o.Param)
		if i < 0 {
			continue
		}
		p := &pts[i]
		if p.Samples == 0 {
			p.Recall, p.Comps = o.Recall, o.Comps
		} else {
			a := f.cfg.Decay
			p.Recall = (1-a)*p.Recall + a*o.Recall
			p.Comps = (1-a)*p.Comps + a*o.Comps
		}
		p.Samples += o.Samples
	}
	f.publishLocked()
}

func rungIndex(ladder []int, v int) int {
	for i, l := range ladder {
		if l == v {
			return i
		}
	}
	return -1
}

func (f *Frontier) publishLocked() {
	t := &table{}
	for b, pts := range f.buckets {
		if pts == nil {
			continue
		}
		cp := make([]Point, len(pts))
		copy(cp, pts)
		t.buckets[b] = cp
	}
	f.tab.Store(t)
}

// Resolve maps a target recall to the cheapest trusted ladder value
// whose estimated recall meets it, for queries of the given k.
// trusted=false means the frontier has no rung that provably meets the
// target (cold, under-sampled, or the target is above everything
// observed); the returned param is then the ladder maximum, the safe
// default. Lock-free; safe for concurrent use.
func (f *Frontier) Resolve(target float64, k int) (param int, trusted bool) {
	ladder := Ladder(f.knob)
	b := bucketOf(k)
	pts := f.tab.Load().buckets[b]
	if pts == nil {
		return f.MaxParam(), false
	}
	cand := -1
	for i, p := range pts {
		if p.Samples >= f.cfg.MinSamples && p.Recall >= target {
			cand = i
			break // ladder is ascending in cost: first hit is cheapest
		}
	}
	if cand < 0 {
		f.last[b].Store(0)
		return f.MaxParam(), false
	}
	// Hysteresis: moving cheaper than the previous resolution needs
	// Margin headroom; holding or moving costlier applies directly.
	if prev := int(f.last[b].Load()) - 1; prev > cand && prev < len(pts) {
		if pts[cand].Recall < target+f.cfg.Margin &&
			pts[prev].Samples >= f.cfg.MinSamples && pts[prev].Recall >= target {
			cand = prev
		}
	}
	f.last[b].Store(int32(cand + 1))
	return ladder[cand], true
}

// BestRecall reports the highest trusted recall estimate in k's bucket
// across all rungs, and whether any rung there is trusted at all. The
// drift detector uses it to decide "tuning exhausted": if even the
// best rung cannot reach the target, no parameter change will — only a
// different index can.
func (f *Frontier) BestRecall(k int) (recall float64, ok bool) {
	pts := f.tab.Load().buckets[bucketOf(k)]
	if pts == nil {
		return 0, false
	}
	for _, p := range pts {
		if p.Samples >= f.cfg.MinSamples {
			ok = true
			if p.Recall > recall {
				recall = p.Recall
			}
		}
	}
	return recall, ok
}

// BucketSnapshot returns a copy of the points for k's bucket, rung by
// rung in ladder order (nil if the bucket has never been observed).
func (f *Frontier) BucketSnapshot(k int) []Point {
	pts := f.tab.Load().buckets[bucketOf(k)]
	if pts == nil {
		return nil
	}
	cp := make([]Point, len(pts))
	copy(cp, pts)
	return cp
}

// Buckets reports which k-bucket lower bounds currently hold data,
// in ascending order, as representative k values (the bucket's
// inclusive upper bound: 1, 2, 4, 8, ...).
func (f *Frontier) Buckets() []int {
	t := f.tab.Load()
	var ks []int
	for b, pts := range t.buckets {
		if pts != nil {
			ks = append(ks, 1<<b)
		}
	}
	return ks
}
