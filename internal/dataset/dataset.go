// Package dataset generates the seeded synthetic workloads used by the
// test suite and the experiment harness, along with exact ground truth
// and recall computation.
//
// The paper's tutorial evaluates techniques on real embedding corpora
// (image, text, video, audio); those are not available offline, so we
// substitute controllable generators (see DESIGN.md "Substitutions"):
//
//   - Uniform: i.i.d. uniform cube — the worst case for partitioning
//     indexes and the canonical curse-of-dimensionality setting.
//   - Clustered: a Gaussian mixture — matches the cluster structure of
//     real embeddings that IVF/graph indexes exploit.
//   - LowRank: points on a low-dimensional manifold embedded in high
//     dimension plus noise — exercises the intrinsic-dimensionality
//     adaptivity claims of randomized trees.
package dataset

import (
	"math/rand"

	"vdbms/internal/topk"
	"vdbms/internal/vec"
)

// Dataset is a row-major matrix of Count vectors of dimension Dim,
// optionally with the generating cluster of each vector (for
// cluster-guided partitioning experiments).
type Dataset struct {
	Dim     int
	Count   int
	Data    []float32 // Count x Dim
	Cluster []int     // generating component per row; nil for Uniform
}

// Row returns vector i as a view.
func (ds *Dataset) Row(i int) []float32 { return ds.Data[i*ds.Dim : (i+1)*ds.Dim] }

// Rows materializes all vectors as slices sharing the backing array.
func (ds *Dataset) Rows() [][]float32 {
	out := make([][]float32, ds.Count)
	for i := range out {
		out[i] = ds.Row(i)
	}
	return out
}

// Uniform generates n i.i.d. vectors uniform in [0,1)^d.
func Uniform(n, d int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	data := make([]float32, n*d)
	for i := range data {
		data[i] = rng.Float32()
	}
	return &Dataset{Dim: d, Count: n, Data: data}
}

// Clustered generates n vectors from a mixture of k Gaussians whose
// centers are uniform in [0,10)^d with per-component std sigma.
func Clustered(n, d, k int, sigma float64, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	centers := make([]float32, k*d)
	for i := range centers {
		centers[i] = rng.Float32() * 10
	}
	data := make([]float32, n*d)
	cluster := make([]int, n)
	for i := 0; i < n; i++ {
		c := rng.Intn(k)
		cluster[i] = c
		for j := 0; j < d; j++ {
			data[i*d+j] = centers[c*d+j] + float32(rng.NormFloat64()*sigma)
		}
	}
	return &Dataset{Dim: d, Count: n, Data: data, Cluster: cluster}
}

// LowRank generates n vectors lying near an r-dimensional linear
// manifold inside d dimensions: x = B z + eps, with z ~ N(0, I_r),
// random basis B, and isotropic noise of scale noise.
func LowRank(n, d, r int, noise float64, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	basis := make([]float64, r*d)
	for i := range basis {
		basis[i] = rng.NormFloat64()
	}
	data := make([]float32, n*d)
	for i := 0; i < n; i++ {
		z := make([]float64, r)
		for j := range z {
			z[j] = rng.NormFloat64()
		}
		for j := 0; j < d; j++ {
			var s float64
			for a := 0; a < r; a++ {
				s += z[a] * basis[a*d+j]
			}
			data[i*d+j] = float32(s + rng.NormFloat64()*noise)
		}
	}
	return &Dataset{Dim: d, Count: n, Data: data}
}

// Queries draws nq query vectors from the same distribution as a
// clustered dataset by sampling base rows and perturbing them, the
// standard way ANN benchmarks derive in-distribution queries.
func (ds *Dataset) Queries(nq int, jitter float64, seed int64) [][]float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float32, nq)
	for i := range out {
		src := ds.Row(rng.Intn(ds.Count))
		q := make([]float32, ds.Dim)
		for j := range q {
			q[j] = src[j] + float32(rng.NormFloat64()*jitter)
		}
		out[i] = q
	}
	return out
}

// GroundTruth computes the exact k nearest base rows for each query
// under fn by brute force.
func GroundTruth(fn vec.DistanceFunc, ds *Dataset, queries [][]float32, k int) [][]topk.Result {
	out := make([][]topk.Result, len(queries))
	for qi, q := range queries {
		c := topk.NewCollector(k)
		for i := 0; i < ds.Count; i++ {
			c.Push(int64(i), fn(q, ds.Row(i)))
		}
		out[qi] = c.Results()
	}
	return out
}

// Recall returns |got ∩ truth| / |truth| treating both as id sets, the
// recall@k measure used by ANN-Benchmarks (Section 2.5).
func Recall(got []topk.Result, truth []topk.Result) float64 {
	if len(truth) == 0 {
		return 1
	}
	want := make(map[int64]bool, len(truth))
	for _, r := range truth {
		want[r.ID] = true
	}
	hits := 0
	for _, r := range got {
		if want[r.ID] {
			hits++
		}
	}
	return float64(hits) / float64(len(truth))
}

// MeanRecall averages Recall over aligned result lists.
func MeanRecall(got, truth [][]topk.Result) float64 {
	if len(got) == 0 {
		return 0
	}
	var s float64
	for i := range got {
		s += Recall(got[i], truth[i])
	}
	return s / float64(len(got))
}
