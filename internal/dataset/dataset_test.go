package dataset

import (
	"testing"

	"vdbms/internal/topk"
	"vdbms/internal/vec"
)

func TestUniformShapeAndRange(t *testing.T) {
	ds := Uniform(50, 7, 1)
	if ds.Count != 50 || ds.Dim != 7 || len(ds.Data) != 350 {
		t.Fatalf("shape wrong: %+v", ds)
	}
	for _, x := range ds.Data {
		if x < 0 || x >= 1 {
			t.Fatalf("uniform sample out of range: %v", x)
		}
	}
	if ds.Cluster != nil {
		t.Fatal("uniform should have no cluster labels")
	}
}

func TestUniformDeterministic(t *testing.T) {
	a := Uniform(20, 3, 42)
	b := Uniform(20, 3, 42)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("same seed must reproduce data")
		}
	}
	c := Uniform(20, 3, 43)
	same := true
	for i := range a.Data {
		if a.Data[i] != c.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should differ")
	}
}

func TestClusteredHasTightClusters(t *testing.T) {
	ds := Clustered(300, 8, 3, 0.1, 7)
	if len(ds.Cluster) != 300 {
		t.Fatal("cluster labels missing")
	}
	// Points sharing a label must be much closer to each other than
	// points from different labels, on average.
	var within, between float64
	var nw, nb int
	for i := 0; i < 100; i++ {
		for j := i + 1; j < 100; j++ {
			d := float64(vec.SquaredL2(ds.Row(i), ds.Row(j)))
			if ds.Cluster[i] == ds.Cluster[j] {
				within += d
				nw++
			} else {
				between += d
				nb++
			}
		}
	}
	if nw == 0 || nb == 0 {
		t.Skip("degenerate sample")
	}
	if within/float64(nw) >= between/float64(nb) {
		t.Fatalf("clusters not separated: within=%v between=%v", within/float64(nw), between/float64(nb))
	}
}

func TestLowRankHasLowIntrinsicDim(t *testing.T) {
	// Variance along the manifold must dwarf variance off it; project
	// onto random directions and check the spread of per-direction
	// variances is large (a uniform full-rank cloud would be flat).
	ds := LowRank(400, 32, 2, 0.01, 3)
	if ds.Count != 400 || ds.Dim != 32 {
		t.Fatal("shape wrong")
	}
	// Compute per-coordinate variances; with rank 2 most coordinate
	// variance comes from 2 latent dims, so total variance should be
	// well explained by the top principal directions. A cheap proxy:
	// mean pairwise distance is far below what independent coords with
	// the same per-coordinate variance would give. Instead, verify
	// reconstruction: distances between points should be explainable
	// in a 2D embedding — check that the Gram matrix of 5 points has
	// tiny 3rd eigenvalue via simple power method on centered data.
	// Pragmatic check: noise dimensions contribute < 5% of energy.
	var total float64
	for _, x := range ds.Data {
		total += float64(x) * float64(x)
	}
	noise := LowRank(400, 32, 2, 0, 3) // same seed, no noise
	var diff float64
	for i := range ds.Data {
		d := float64(ds.Data[i] - noise.Data[i])
		diff += d * d
	}
	if diff/total > 0.05 {
		t.Fatalf("noise energy fraction too high: %v", diff/total)
	}
}

func TestQueriesInDistribution(t *testing.T) {
	ds := Clustered(200, 4, 2, 0.2, 9)
	qs := ds.Queries(10, 0.05, 11)
	if len(qs) != 10 || len(qs[0]) != 4 {
		t.Fatal("query shape wrong")
	}
	// Each query must be very close to some base row.
	for _, q := range qs {
		best := float32(1e30)
		for i := 0; i < ds.Count; i++ {
			if d := vec.SquaredL2(q, ds.Row(i)); d < best {
				best = d
			}
		}
		if best > 1 {
			t.Fatalf("query too far from base: %v", best)
		}
	}
}

func TestGroundTruthMatchesManual(t *testing.T) {
	ds := &Dataset{Dim: 1, Count: 4, Data: []float32{0, 1, 5, 6}}
	truth := GroundTruth(vec.SquaredL2, ds, [][]float32{{0.6}}, 2)
	if len(truth) != 1 || len(truth[0]) != 2 {
		t.Fatalf("truth shape: %v", truth)
	}
	if truth[0][0].ID != 1 || truth[0][1].ID != 0 {
		t.Fatalf("truth = %v", truth[0])
	}
}

func TestRecall(t *testing.T) {
	truth := []topk.Result{{ID: 1}, {ID: 2}, {ID: 3}, {ID: 4}}
	got := []topk.Result{{ID: 2}, {ID: 4}, {ID: 9}, {ID: 10}}
	if r := Recall(got, truth); r != 0.5 {
		t.Fatalf("Recall = %v, want 0.5", r)
	}
	if r := Recall(nil, nil); r != 1 {
		t.Fatalf("empty truth recall = %v, want 1", r)
	}
	mean := MeanRecall([][]topk.Result{got, truth}, [][]topk.Result{truth, truth})
	if mean != 0.75 {
		t.Fatalf("MeanRecall = %v, want 0.75", mean)
	}
	if MeanRecall(nil, nil) != 0 {
		t.Fatal("MeanRecall of nothing should be 0")
	}
}

func TestRowsViewsAlias(t *testing.T) {
	ds := Uniform(3, 2, 5)
	rows := ds.Rows()
	rows[1][0] = 99
	if ds.Row(1)[0] != 99 {
		t.Fatal("Rows should share backing storage")
	}
}
