// Package planner implements plan enumeration and selection for
// predicated ("hybrid") vector queries (Section 2.3). The plan space
// follows AnalyticDB-V's four plans:
//
//	PlanBruteForce  (A) single-stage brute-force scan with the
//	                    predicate fused into the scan;
//	PlanPreFilter   (B) attribute filtering first, producing a bitmap
//	                    consulted during index scan (block-first);
//	PlanPostFilter  (C) unfiltered index scan of alpha*k candidates,
//	                    predicate applied to the result set;
//	PlanSingleStage (D) visit-first index traversal with the predicate
//	                    checked on visited nodes.
//
// Selection is rule-based (selectivity thresholds, the Qdrant/Vespa
// recipe) or cost-based (a linear I/O+CPU model per operator, the
// Milvus/AnalyticDB-V recipe). Profiles reproduce the predefined-plan
// behavior of commercial systems surveyed in Section 2.4.
package planner

import "fmt"

// Kind identifies a hybrid query plan.
type Kind int

const (
	// BruteForce is plan A: fused predicate + exhaustive scan.
	BruteForce Kind = iota
	// PreFilter is plan B: bitmap first, blocked index scan second.
	PreFilter
	// PostFilter is plan C: ANN first, predicate on the result set.
	PostFilter
	// SingleStage is plan D: predicate evaluated during traversal.
	SingleStage
)

// String names the plan for logs and experiment tables.
func (k Kind) String() string {
	switch k {
	case BruteForce:
		return "brute_force"
	case PreFilter:
		return "pre_filter"
	case PostFilter:
		return "post_filter"
	case SingleStage:
		return "single_stage"
	default:
		return fmt.Sprintf("plan(%d)", int(k))
	}
}

// Plan is a selected plan plus its knobs.
type Plan struct {
	Kind Kind
	// Alpha is the post-filter over-fetch multiplier: the index is
	// asked for Alpha*k candidates before the predicate is applied
	// (Section 2.6(3) discusses tuning it).
	Alpha int
}

// Enumerate returns every plan applicable to the current environment —
// the "automatic enumeration" mode. Plans requiring an ANN index are
// omitted when none exists.
func Enumerate(hasIndex bool, alpha int) []Plan {
	if alpha <= 0 {
		alpha = 4
	}
	plans := []Plan{{Kind: BruteForce}}
	if hasIndex {
		plans = append(plans,
			Plan{Kind: PreFilter},
			Plan{Kind: PostFilter, Alpha: alpha},
			Plan{Kind: SingleStage},
		)
	}
	return plans
}

// Env carries the statistics selection runs on.
type Env struct {
	N           int     // collection size
	K           int     // requested results
	Selectivity float64 // estimated predicate selectivity in [0,1]
	HasIndex    bool
	// IndexComps estimates full-vector distance computations for one
	// unfiltered ANN search (e.g. ef * avg degree for graphs, nprobe *
	// n/nlist for IVF). Zero falls back to a sqrt(N) heuristic.
	IndexComps float64
	// AttrCostRatio is the cost of one attribute predicate check
	// relative to one distance computation; default 0.3 (calibrated
	// against this engine's interpreted predicate evaluator — see
	// E12b).
	AttrCostRatio float64
	// Alpha for post-filter plans; default 4.
	Alpha int
	// QuantRatio, in (0,1), discounts IndexComps when the index scans
	// quantized codes: one code-LUT comparison reads BytesPerRow bytes
	// instead of 4*dim and skips the multiply chain, so its cost
	// relative to a full-precision comparison is well below 1 (the
	// executor sets ~0.35 for SQ8, or the measured ratio once
	// calibration has observed enough scans). 0 (or ≥1) means full
	// precision. The exact re-rank stage is already counted inside
	// IndexComps by the indexes' own accounting.
	QuantRatio float64
	// ShortfallSelectivity is the pessimistic selectivity the
	// post-filter shortfall gate judges with. Cost ranking may use a
	// blended or calibrated Selectivity, but admitting a post-filter
	// plan is a correctness decision (a (c,k)-search must return k
	// results when they exist), so the gate must never get more
	// optimistic than the rawest estimate available. Zero means "use
	// Selectivity".
	ShortfallSelectivity float64
}

func (e Env) normalized() Env {
	if e.Alpha <= 0 {
		e.Alpha = 4
	}
	if e.AttrCostRatio <= 0 {
		e.AttrCostRatio = 0.3
	}
	if e.IndexComps <= 0 {
		c := 1.0
		for c*c < float64(e.N) {
			c++
		}
		e.IndexComps = 16 * c
	}
	if e.QuantRatio > 0 && e.QuantRatio < 1 {
		e.IndexComps *= e.QuantRatio
	}
	if e.Selectivity < 0 {
		e.Selectivity = 0
	}
	if e.Selectivity > 1 {
		e.Selectivity = 1
	}
	if e.ShortfallSelectivity <= 0 || e.ShortfallSelectivity > 1 {
		e.ShortfallSelectivity = e.Selectivity
	}
	return e
}

// RuleBased selects a plan with the selectivity heuristic the paper
// attributes to Qdrant and Vespa:
//
//   - very selective predicate (few survivors): scanning the survivors
//     exhaustively is cheapest -> brute force over the filtered set
//     (plan A, or B when survivors still warrant the index);
//   - mildly selective: post-filtering wastes little -> plan C;
//   - in between: visit-first single-stage traversal -> plan D.
func RuleBased(e Env) Plan {
	e = e.normalized()
	if !e.HasIndex {
		return Plan{Kind: BruteForce}
	}
	survivors := e.Selectivity * float64(e.N)
	switch {
	case survivors <= 4*float64(e.K) || survivors <= e.IndexComps:
		// So few survivors that exact scan over them beats any index.
		return Plan{Kind: PreFilter}
	case e.Selectivity >= 0.5:
		return Plan{Kind: PostFilter, Alpha: e.Alpha}
	default:
		return Plan{Kind: SingleStage}
	}
}

// Cost estimates the latency of a plan in distance-computation units
// using the linear model of Section 2.3(2): total cost = CPU cost of
// distance comparisons + attribute evaluations, each weighted.
func Cost(p Plan, e Env) float64 {
	e = e.normalized()
	n := float64(e.N)
	sel := e.Selectivity
	attr := e.AttrCostRatio
	switch p.Kind {
	case BruteForce:
		// Evaluate the predicate on every row, distance on survivors.
		return n*attr + n*sel
	case PreFilter:
		// Bitmap build (attr on every row) + exact scan over survivors
		// when few, or blocked index scan otherwise.
		survivors := sel * n
		scan := survivors
		if blocked := e.IndexComps / maxf(sel, 1e-6); blocked < scan {
			scan = blocked
		}
		return n*attr + scan
	case PostFilter:
		alpha := float64(p.Alpha)
		if alpha <= 0 {
			alpha = 4
		}
		// One ANN search sized for alpha*k results + attr checks on
		// the candidates. Shortfall risk is handled by Penalty.
		return e.IndexComps*alpha/4 + alpha*float64(e.K)*attr
	case SingleStage:
		// Traversal must explore beyond the unfiltered beam to fill k
		// admitted results. Empirically the extra exploration grows
		// like 1/sqrt(sel), gentler than the naive 1/sel bound,
		// because blocked nodes still guide the walk (they are
		// traversed, just not returned). Estimating this precisely is
		// open problem 3 of the paper.
		visits := e.IndexComps / maxf(sqrt(sel), 1e-3)
		if visits > n {
			visits = n
		}
		return visits * (1 + attr)
	default:
		return n
	}
}

// ShortfallRisk estimates the probability-weighted result deficit of a
// post-filter plan: expected survivors among alpha*k candidates is
// alpha*k*sel; below k the plan may return fewer than k results.
// Returns the expected fraction of the result set that is missing.
func ShortfallRisk(alpha, k int, sel float64) float64 {
	expect := float64(alpha) * float64(k) * sel
	if expect >= float64(k) {
		return 0
	}
	return 1 - expect/float64(k)
}

// CostBased picks the plan with minimum estimated cost, excluding
// post-filter plans whose shortfall risk exceeds 10% (a (c,k)-search
// must return k results when they exist).
func CostBased(e Env) Plan {
	e = e.normalized()
	best := Plan{Kind: BruteForce}
	bestCost := Cost(best, e)
	for _, p := range Enumerate(e.HasIndex, e.Alpha)[1:] {
		if p.Kind == PostFilter && ShortfallRisk(p.Alpha, e.K, e.ShortfallSelectivity) > 0.1 {
			continue
		}
		if c := Cost(p, e); c < bestCost {
			best, bestCost = p, c
		}
	}
	return best
}

// Observed carries statistics measured online by the stats layer
// (internal/stats): the real probe cost and predicate selectivities
// of the workload actually being served, as opposed to the static
// heuristics Env falls back to. It is the planner-side half of the
// ROADMAP's adaptive query optimization: the "adaptive" policy
// refines its cost model with these before selecting a plan.
type Observed struct {
	// MeanProbeComps is the mean full-vector distance computations per
	// ANN index probe, measured across served queries. Zero means "no
	// probes observed yet".
	MeanProbeComps float64
	// ProbeCount is how many probes the mean is over.
	ProbeCount int64
	// MeanSelectivity is the mean observed selectivity for the query's
	// predicate columns (a coarse per-column prior). Valid only when
	// SelObservations > 0.
	MeanSelectivity float64
	// SelObservations is the smallest per-column observation count
	// backing MeanSelectivity.
	SelObservations int64
	// AttrCostRatio is the measured cost of one attribute predicate
	// evaluation relative to one full-precision distance computation
	// (ns per eval / ns per comp), replacing the static 0.3 once
	// AttrObservations backs it.
	AttrCostRatio    float64
	AttrObservations int64
	// QuantRatio is the measured cost of one quantized-code comparison
	// relative to one full-precision comparison, replacing the static
	// ~0.35 discount once QuantObservations backs it. Only meaningful
	// in (0,1).
	QuantRatio        float64
	QuantObservations int64
}

// Minimum observation counts before AdaptiveEnv trusts a measured
// statistic over the static heuristic. Below these the sample is too
// noisy to beat a defensible default.
const (
	MinProbeObservations = 16
	MinSelObservations   = 32
	// MinCostObservations gates the timing-derived ratios
	// (AttrCostRatio, QuantRatio): each observation is already an
	// average over a whole scan, so fewer are needed.
	MinCostObservations = 8
)

// AdaptiveEnv refines e with measured statistics: the observed probe
// cost replaces the sqrt(N) IndexComps heuristic once enough probes
// back it, the observed selectivity prior is blended 50/50 with the
// per-query sampled estimate once enough observations back it (the
// sampled estimate stays in the mix because the prior conflates
// different predicate values on the same column), and the timing-
// calibrated cost ratios (attribute eval vs distance comp, quantized
// vs full-precision comp) replace their static defaults. Cost-based
// selection over the refined env is the "adaptive" policy.
//
// Calibration is deliberately barred from the post-filter shortfall
// gate: ShortfallSelectivity is pinned to the most pessimistic (lowest)
// selectivity estimate in hand, so refinement can reorder plans by
// cost but can never talk CostBased into a shortfall-prone post-filter
// that the uncalibrated model would have rejected.
func AdaptiveEnv(e Env, o Observed) Env {
	if o.ProbeCount >= MinProbeObservations && o.MeanProbeComps > 0 {
		e.IndexComps = o.MeanProbeComps
	}
	if o.SelObservations >= MinSelObservations {
		prior := clamp01(o.MeanSelectivity)
		pessimistic := e.Selectivity
		if prior < pessimistic {
			pessimistic = prior
		}
		e.Selectivity = (e.Selectivity + prior) / 2
		if e.ShortfallSelectivity <= 0 || pessimistic < e.ShortfallSelectivity {
			e.ShortfallSelectivity = pessimistic
		}
	}
	if o.AttrObservations >= MinCostObservations && o.AttrCostRatio > 0 {
		e.AttrCostRatio = o.AttrCostRatio
	}
	if o.QuantObservations >= MinCostObservations && o.QuantRatio > 0 && o.QuantRatio < 1 {
		// Only meaningful when the env says the index scans quantized
		// codes at all; replacing a zero ratio would invent a discount.
		if e.QuantRatio > 0 {
			e.QuantRatio = o.QuantRatio
		}
	}
	return e
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 24; i++ {
		z = 0.5 * (z + x/z)
	}
	return z
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Profile reproduces the predefined-plan policy of a surveyed system
// (Section 2.4): given the environment it returns that system's plan
// without inspecting costs.
type Profile string

// Profiles of surveyed systems.
const (
	// ProfileVearch always post-filters (acceptable for e-commerce
	// where fewer than k results are tolerated).
	ProfileVearch Profile = "vearch"
	// ProfileWeaviate always pre-filters.
	ProfileWeaviate Profile = "weaviate"
	// ProfileEuclid always uses its single index, unpredicated plans
	// only (single-stage when predicated).
	ProfileEuclid Profile = "euclid"
	// ProfileADBV runs the AnalyticDB-V cost-based optimizer over all
	// four plans.
	ProfileADBV Profile = "analyticdb-v"
	// ProfileMilvus models Milvus: cost-based across partition-based
	// pre-filter and post-filter.
	ProfileMilvus Profile = "milvus"
	// ProfileQdrant models Qdrant/Vespa rule-based selection.
	ProfileQdrant Profile = "qdrant"
)

// Select returns the profile's plan for the environment.
func (pr Profile) Select(e Env) (Plan, error) {
	e = e.normalized()
	switch pr {
	case ProfileVearch:
		return Plan{Kind: PostFilter, Alpha: e.Alpha}, nil
	case ProfileWeaviate:
		return Plan{Kind: PreFilter}, nil
	case ProfileEuclid:
		return Plan{Kind: SingleStage}, nil
	case ProfileADBV, ProfileMilvus:
		return CostBased(e), nil
	case ProfileQdrant:
		return RuleBased(e), nil
	default:
		return Plan{}, fmt.Errorf("planner: unknown profile %q", string(pr))
	}
}
