package planner

import (
	"math"
	"testing"
)

func TestEnumerate(t *testing.T) {
	if got := Enumerate(false, 0); len(got) != 1 || got[0].Kind != BruteForce {
		t.Fatalf("no-index plans = %v", got)
	}
	got := Enumerate(true, 0)
	if len(got) != 4 {
		t.Fatalf("full plan space = %v", got)
	}
	for _, p := range got {
		if p.Kind == PostFilter && p.Alpha != 4 {
			t.Fatalf("default alpha = %d", p.Alpha)
		}
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		BruteForce: "brute_force", PreFilter: "pre_filter",
		PostFilter: "post_filter", SingleStage: "single_stage",
	} {
		if k.String() != want {
			t.Fatalf("%v != %s", k, want)
		}
	}
}

func TestRuleBasedRegimes(t *testing.T) {
	base := Env{N: 100000, K: 10, HasIndex: true, IndexComps: 2000}
	// Very selective: pre-filter.
	e := base
	e.Selectivity = 0.0001 // 10 survivors
	if p := RuleBased(e); p.Kind != PreFilter {
		t.Fatalf("selective -> %v", p.Kind)
	}
	// Permissive: post-filter.
	e.Selectivity = 0.9
	if p := RuleBased(e); p.Kind != PostFilter {
		t.Fatalf("permissive -> %v", p.Kind)
	}
	// Middle: single-stage.
	e.Selectivity = 0.2
	if p := RuleBased(e); p.Kind != SingleStage {
		t.Fatalf("middle -> %v", p.Kind)
	}
	// No index: brute force regardless.
	e.HasIndex = false
	if p := RuleBased(e); p.Kind != BruteForce {
		t.Fatalf("no index -> %v", p.Kind)
	}
}

func TestCostOrderingBySelectivity(t *testing.T) {
	mk := func(sel float64) Env {
		return Env{N: 100000, K: 10, HasIndex: true, Selectivity: sel, IndexComps: 2000}
	}
	// At high selectivity post-filter must be the cheapest valid plan.
	e := mk(0.9)
	cPost := Cost(Plan{Kind: PostFilter, Alpha: 4}, e)
	cBrute := Cost(Plan{Kind: BruteForce}, e)
	if cPost >= cBrute {
		t.Fatalf("post-filter %v should beat brute force %v at sel 0.9", cPost, cBrute)
	}
	// At tiny selectivity pre-filter (scan survivors) must beat
	// single-stage traversal.
	e = mk(0.0001)
	cPre := Cost(Plan{Kind: PreFilter}, e)
	cSingle := Cost(Plan{Kind: SingleStage}, e)
	if cPre >= cSingle {
		t.Fatalf("pre-filter %v should beat single-stage %v at sel 0.0001", cPre, cSingle)
	}
}

func TestShortfallRisk(t *testing.T) {
	if r := ShortfallRisk(4, 10, 0.5); r != 0 {
		t.Fatalf("alpha=4 sel=0.5 risk = %v", r)
	}
	if r := ShortfallRisk(2, 10, 0.1); r <= 0 || r >= 1 {
		t.Fatalf("alpha=2 sel=0.1 risk = %v", r)
	}
	if ShortfallRisk(1, 10, 0.05) < ShortfallRisk(8, 10, 0.05) {
		t.Fatal("more over-fetch must not raise risk")
	}
}

func TestCostBasedAvoidsShortfall(t *testing.T) {
	// Selectivity so low that post-filter would return almost nothing:
	// cost-based must not pick it.
	e := Env{N: 100000, K: 10, HasIndex: true, Selectivity: 0.001, IndexComps: 2000, Alpha: 4}
	if p := CostBased(e); p.Kind == PostFilter {
		t.Fatal("cost-based picked a shortfall-prone post-filter")
	}
	// Permissive predicate: post-filter wins.
	e.Selectivity = 0.9
	if p := CostBased(e); p.Kind != PostFilter {
		t.Fatalf("high selectivity -> %v", p.Kind)
	}
	// No index: brute force.
	e.HasIndex = false
	if p := CostBased(e); p.Kind != BruteForce {
		t.Fatalf("no index -> %v", p.Kind)
	}
}

func TestEnvNormalization(t *testing.T) {
	e := Env{N: 10000, K: 5, Selectivity: 2}.normalized()
	if e.Selectivity != 1 || e.Alpha != 4 || e.IndexComps <= 0 || e.AttrCostRatio <= 0 {
		t.Fatalf("normalized = %+v", e)
	}
	e = Env{N: 10000, K: 5, Selectivity: -1}.normalized()
	if e.Selectivity != 0 {
		t.Fatal("negative selectivity should clamp")
	}
}

func TestProfiles(t *testing.T) {
	e := Env{N: 50000, K: 10, HasIndex: true, Selectivity: 0.5}
	cases := map[Profile]Kind{
		ProfileVearch:   PostFilter,
		ProfileWeaviate: PreFilter,
		ProfileEuclid:   SingleStage,
	}
	for prof, want := range cases {
		p, err := prof.Select(e)
		if err != nil {
			t.Fatal(err)
		}
		if p.Kind != want {
			t.Fatalf("%s -> %v, want %v", prof, p.Kind, want)
		}
	}
	// Optimizer-backed profiles must return a valid plan.
	for _, prof := range []Profile{ProfileADBV, ProfileMilvus, ProfileQdrant} {
		if _, err := prof.Select(e); err != nil {
			t.Fatalf("%s: %v", prof, err)
		}
	}
	if _, err := Profile("bogus").Select(e); err == nil {
		t.Fatal("want unknown-profile error")
	}
}

func TestAdaptiveEnv(t *testing.T) {
	base := Env{N: 100000, K: 10, HasIndex: true, Selectivity: 0.4, IndexComps: 5000}

	// Too few observations: the env is untouched.
	e := AdaptiveEnv(base, Observed{
		MeanProbeComps: 900, ProbeCount: MinProbeObservations - 1,
		MeanSelectivity: 0.9, SelObservations: MinSelObservations - 1,
	})
	if e != base {
		t.Fatalf("under-observed env changed: %+v", e)
	}

	// Enough probes: the measured cost replaces the heuristic. Enough
	// selectivity observations: the prior blends 50/50 with the sample.
	e = AdaptiveEnv(base, Observed{
		MeanProbeComps: 900, ProbeCount: MinProbeObservations,
		MeanSelectivity: 0.8, SelObservations: MinSelObservations,
	})
	if e.IndexComps != 900 {
		t.Fatalf("IndexComps = %v, want 900", e.IndexComps)
	}
	if want := (0.4 + 0.8) / 2; math.Abs(e.Selectivity-want) > 1e-12 {
		t.Fatalf("Selectivity = %v, want %v", e.Selectivity, want)
	}

	// An out-of-range observed selectivity clamps before blending, and
	// a zero mean probe cost never wipes the heuristic.
	e = AdaptiveEnv(base, Observed{
		MeanProbeComps: 0, ProbeCount: 1000,
		MeanSelectivity: 3, SelObservations: MinSelObservations,
	})
	if e.IndexComps != base.IndexComps {
		t.Fatalf("zero probe cost overwrote IndexComps: %v", e.IndexComps)
	}
	if want := (0.4 + 1.0) / 2; e.Selectivity != want {
		t.Fatalf("clamped blend = %v, want %v", e.Selectivity, want)
	}
}

// ProfileADBV crossover sweep: with selectivity rising from needle to
// permissive at fixed size, the cost-based optimizer must walk the
// paper's regimes — pre-filter while survivors are few, never a
// shortfall-prone post-filter, post-filter once the predicate passes
// nearly everything.
func TestProfileADBVSelectivitySweep(t *testing.T) {
	base := Env{N: 200000, K: 10, HasIndex: true, IndexComps: 3000, Alpha: 4}
	wins := map[float64]Kind{}
	for _, sel := range []float64{0.0005, 0.005, 0.05, 0.3, 0.6, 0.95} {
		e := base
		e.Selectivity = sel
		p, err := ProfileADBV.Select(e)
		if err != nil {
			t.Fatal(err)
		}
		wins[sel] = p.Kind
		if p.Kind == PostFilter && ShortfallRisk(p.Alpha, e.K, sel) > 0.1 {
			t.Fatalf("sel=%v: adbv picked shortfall-prone post-filter", sel)
		}
	}
	// At needle selectivity both scan plans cost n*attr + survivors;
	// either is correct, an index-first plan is not.
	if wins[0.0005] != PreFilter && wins[0.0005] != BruteForce {
		t.Fatalf("needle selectivity -> %v, want an exact-scan plan", wins[0.0005])
	}
	if wins[0.95] != PostFilter {
		t.Fatalf("permissive selectivity -> %v, want post_filter", wins[0.95])
	}
}

// ProfileMilvus size sweep at fixed selectivity: tiny collections are
// cheapest brute-forced / pre-filtered (the index costs more than the
// scan), large ones must use the index.
func TestProfileMilvusSizeSweep(t *testing.T) {
	for _, tc := range []struct {
		n        int
		comps    float64
		wantScan bool // brute force or pre-filter exact scan
	}{
		{n: 200, comps: 180, wantScan: true},
		{n: 1000000, comps: 4000, wantScan: false},
	} {
		e := Env{N: tc.n, K: 10, HasIndex: true, Selectivity: 0.5, IndexComps: tc.comps, Alpha: 4}
		p, err := ProfileMilvus.Select(e)
		if err != nil {
			t.Fatal(err)
		}
		isScan := p.Kind == BruteForce || p.Kind == PreFilter
		if isScan != tc.wantScan {
			t.Fatalf("n=%d -> %v (scan=%v), want scan=%v", tc.n, p.Kind, isScan, tc.wantScan)
		}
	}
}

// Regression: no calibration input — however flattering to the index
// path — may make CostBased pick a post-filter whose shortfall risk
// the uncalibrated model rejects. The gate judges on the pessimistic
// raw selectivity, not the calibrated blend.
func TestCalibrationNeverAdmitsShortfallPostFilter(t *testing.T) {
	base := Env{N: 100000, K: 10, HasIndex: true, Selectivity: 0.001, IndexComps: 2000, Alpha: 4}
	// Adversarial calibration: dirt-cheap index probes, near-free
	// attribute checks, a selectivity prior that claims the predicate
	// passes everything.
	obs := Observed{
		MeanProbeComps: 10, ProbeCount: 1 << 20,
		MeanSelectivity: 1.0, SelObservations: 1 << 20,
		AttrCostRatio: 1e-6, AttrObservations: 1 << 20,
		QuantRatio: 0.01, QuantObservations: 1 << 20,
	}
	e := AdaptiveEnv(base, obs)
	if risk := ShortfallRisk(4, e.K, base.Selectivity); risk <= 0.1 {
		t.Fatalf("test premise broken: raw risk = %v", risk)
	}
	if p := CostBased(e); p.Kind == PostFilter {
		t.Fatal("calibrated env admitted a shortfall-prone post-filter")
	}
	// Same sweep across every raw selectivity in the risky band.
	for _, sel := range []float64{0.0001, 0.001, 0.01, 0.02} {
		b := base
		b.Selectivity = sel
		if ShortfallRisk(4, b.K, sel) <= 0.1 {
			continue
		}
		if p := CostBased(AdaptiveEnv(b, obs)); p.Kind == PostFilter {
			t.Fatalf("sel=%v: calibration admitted shortfall-prone post-filter", sel)
		}
	}
}

// Calibrated cost ratios replace their static defaults only once
// enough scans back them, and a bogus quantized ratio can never invent
// a discount for a full-precision index.
func TestAdaptiveEnvCalibratedRatios(t *testing.T) {
	base := Env{N: 100000, K: 10, HasIndex: true, Selectivity: 0.4, IndexComps: 5000, QuantRatio: 0.35}
	e := AdaptiveEnv(base, Observed{
		AttrCostRatio: 0.05, AttrObservations: MinCostObservations,
		QuantRatio: 0.2, QuantObservations: MinCostObservations,
	})
	if e.AttrCostRatio != 0.05 || e.QuantRatio != 0.2 {
		t.Fatalf("calibrated ratios not applied: %+v", e)
	}
	// Under-observed: untouched.
	e = AdaptiveEnv(base, Observed{
		AttrCostRatio: 0.05, AttrObservations: MinCostObservations - 1,
		QuantRatio: 0.2, QuantObservations: MinCostObservations - 1,
	})
	if e.AttrCostRatio != base.AttrCostRatio || e.QuantRatio != base.QuantRatio {
		t.Fatalf("under-observed ratios applied: %+v", e)
	}
	// Full-precision index (QuantRatio 0): measured quant ratio must
	// not fabricate a discount.
	fp := base
	fp.QuantRatio = 0
	e = AdaptiveEnv(fp, Observed{QuantRatio: 0.2, QuantObservations: 1 << 20})
	if e.QuantRatio != 0 {
		t.Fatalf("quant discount invented for full-precision index: %v", e.QuantRatio)
	}
}
