package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"vdbms/internal/dist"
	"vdbms/internal/topk"
)

// HTTP front for the distributed read path (Section 2.3(2)): a
// DistServer fronts a dist.Router and degrades gracefully — when some
// shards fail or time out the response is still a 200 carrying the
// merged top-k from the shards that answered, with the Partial report
// as a body field and the PartialHeader set, instead of a 500.

// PartialHeader is "true" when the response body carries results from
// only a subset of the targeted shards, "false" on full coverage.
// Clients that cannot tolerate partial answers check this (or the
// "partial" body field) without parsing the hit list.
const PartialHeader = "X-Vdbms-Partial"

// DistServer serves scatter-gather searches over a dist.Router.
type DistServer struct {
	router         *dist.Router
	mux            *http.ServeMux
	defaultTimeout time.Duration
}

// DistOption configures a DistServer.
type DistOption func(*DistServer)

// WithDistQueryTimeout sets the per-query deadline applied when a
// request does not carry its own timeout_ms. 0 means no default
// deadline.
func WithDistQueryTimeout(d time.Duration) DistOption {
	return func(s *DistServer) { s.defaultTimeout = d }
}

// NewDist builds the handler set around router:
//
//	POST /search   {"vector": [...], "k": 10, "ef": 100, "probes": 2, "timeout_ms": 50}
//	GET  /healthz  shard count liveness
func NewDist(router *dist.Router, opts ...DistOption) *DistServer {
	s := &DistServer{router: router, mux: http.NewServeMux()}
	for _, o := range opts {
		o(s)
	}
	s.mux.HandleFunc("/search", s.handleSearch)
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"shards": router.NumShards()})
	})
	return s
}

// ServeHTTP implements http.Handler.
func (s *DistServer) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// DistSearchRequest is the body of POST /search.
type DistSearchRequest struct {
	Vector []float32 `json:"vector"`
	K      int       `json:"k"`
	Ef     int       `json:"ef,omitempty"`
	// Probes routes to the N nearest shard centroids (0 = full
	// fan-out; ignored without index-guided partitioning).
	Probes int `json:"probes,omitempty"`
	// TimeoutMillis is the query deadline; overrides the server
	// default. 0 keeps the default.
	TimeoutMillis int64 `json:"timeout_ms,omitempty"`
}

// DistHit is one result row of a distributed search.
type DistHit struct {
	ID   int64   `json:"id"`
	Dist float32 `json:"dist"`
}

// DistSearchResponse is the body of a successful POST /search. On
// partial coverage Partial is set and the X-Vdbms-Partial header is
// "true"; Hits then covers only the shards that answered.
type DistSearchResponse struct {
	Hits    []DistHit     `json:"hits"`
	Partial *dist.Partial `json:"partial,omitempty"`
}

func (s *DistServer) handleSearch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	var req DistSearchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if req.K <= 0 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("k must be positive"))
		return
	}
	ef := req.Ef
	if ef <= 0 {
		ef = 100
	}
	ctx := r.Context()
	timeout := s.defaultTimeout
	if req.TimeoutMillis > 0 {
		timeout = time.Duration(req.TimeoutMillis) * time.Millisecond
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	res, partial, err := s.router.RoutedSearch(ctx, req.Vector, req.K, ef, req.Probes)
	if err != nil {
		// Nothing (or too little) answered: 504 when the deadline was
		// the cause, 502 when the shards themselves failed. The
		// Partial report still names the casualties.
		status := http.StatusBadGateway
		if errors.Is(err, context.DeadlineExceeded) {
			status = http.StatusGatewayTimeout
		}
		w.Header().Set(PartialHeader, "true")
		writeJSON(w, status, map[string]any{"error": err.Error(), "partial": partial})
		return
	}
	w.Header().Set(PartialHeader, strconv.FormatBool(!partial.Complete()))
	resp := DistSearchResponse{Hits: toDistHits(res)}
	if !partial.Complete() {
		resp.Partial = &partial
	}
	writeJSON(w, http.StatusOK, resp)
}

func toDistHits(res []topk.Result) []DistHit {
	out := make([]DistHit, len(res))
	for i, r := range res {
		out[i] = DistHit{ID: r.ID, Dist: r.Dist}
	}
	return out
}
