package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"time"

	"vdbms/internal/dist"
	"vdbms/internal/fault"
	"vdbms/internal/obs"
	"vdbms/internal/topk"
)

// HTTP front for the distributed read path (Section 2.3(2)): a
// DistServer fronts a dist.Router and degrades gracefully — when some
// shards fail or time out the response is still a 200 carrying the
// merged top-k from the shards that answered, with the Partial report
// as a body field and the PartialHeader set, instead of a 500.

// PartialHeader is "true" when the response body carries results from
// only a subset of the targeted shards, "false" on full coverage.
// Clients that cannot tolerate partial answers check this (or the
// "partial" body field) without parsing the hit list.
const PartialHeader = "X-Vdbms-Partial"

// DistServer serves scatter-gather searches over a dist.Router.
type DistServer struct {
	router         *dist.Router
	mux            *http.ServeMux
	defaultTimeout time.Duration
	slowQuery      time.Duration
	logf           func(format string, args ...any)
}

// DistOption configures a DistServer.
type DistOption func(*DistServer)

// WithDistQueryTimeout sets the per-query deadline applied when a
// request does not carry its own timeout_ms. 0 means no default
// deadline.
func WithDistQueryTimeout(d time.Duration) DistOption {
	return func(s *DistServer) { s.defaultTimeout = d }
}

// WithDistSlowQueryLog logs any scatter-gather slower than d with its
// span tree and counts it in vdbms_slow_query_total. 0 disables.
func WithDistSlowQueryLog(d time.Duration) DistOption {
	return func(s *DistServer) { s.slowQuery = d }
}

// WithDistLogf redirects the server's log output (used by tests).
func WithDistLogf(f func(format string, args ...any)) DistOption {
	return func(s *DistServer) { s.logf = f }
}

// NewDist builds the handler set around router:
//
//	POST /search       {"vector": [...], "k": 10, "ef": 100, "probes": 2, "timeout_ms": 50}
//	GET  /healthz      shard count + per-shard breaker state (503 when all open)
//	GET  /metrics      Prometheus text exposition
//	GET  /debug/stats  metrics + runtime snapshot as JSON
func NewDist(router *dist.Router, opts ...DistOption) *DistServer {
	s := &DistServer{router: router, mux: http.NewServeMux(), logf: log.Printf}
	for _, o := range opts {
		o(s)
	}
	s.mux.HandleFunc("/search", s.handleSearch)
	s.mux.Handle("/metrics", obs.MetricsHandler(obs.Default()))
	s.mux.Handle("/debug/stats", obs.StatsHandler(obs.Default()))
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	return s
}

// handleHealthz reports shard count and per-shard breaker state. The
// server is unhealthy (503) only when every shard's breaker is open —
// no search can produce results in that state; any admitting shard
// keeps it 200 because partial answers are still served.
func (s *DistServer) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	states := s.router.ShardStates()
	allOpen := len(states) > 0
	for _, st := range states {
		if st != fault.Open.String() {
			allOpen = false
			break
		}
	}
	status := http.StatusOK
	if allOpen {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]any{
		"shards":   s.router.NumShards(),
		"breakers": states,
		"healthy":  !allOpen,
	})
}

// ServeHTTP implements http.Handler.
func (s *DistServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	obs.HTTPRequests.With(routeLabel(r.URL.Path)).Inc()
	s.mux.ServeHTTP(w, r)
}

// DistSearchRequest is the body of POST /search.
type DistSearchRequest struct {
	Vector []float32 `json:"vector"`
	K      int       `json:"k"`
	Ef     int       `json:"ef,omitempty"`
	// Probes routes to the N nearest shard centroids (0 = full
	// fan-out; ignored without index-guided partitioning).
	Probes int `json:"probes,omitempty"`
	// TimeoutMillis is the query deadline; overrides the server
	// default. 0 keeps the default.
	TimeoutMillis int64 `json:"timeout_ms,omitempty"`
}

// DistHit is one result row of a distributed search.
type DistHit struct {
	ID   int64   `json:"id"`
	Dist float32 `json:"dist"`
}

// DistSearchResponse is the body of a successful POST /search. On
// partial coverage Partial is set and the X-Vdbms-Partial header is
// "true"; Hits then covers only the shards that answered. Trace is
// present only when the request carried "X-Vdbms-Trace: 1".
type DistSearchResponse struct {
	Hits    []DistHit       `json:"hits"`
	Partial *dist.Partial   `json:"partial,omitempty"`
	Trace   *obs.SpanReport `json:"trace,omitempty"`
}

func (s *DistServer) handleSearch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	var req DistSearchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if req.K <= 0 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("k must be positive"))
		return
	}
	ef := req.Ef
	if ef <= 0 {
		ef = 100
	}
	ctx := r.Context()
	timeout := s.defaultTimeout
	if req.TimeoutMillis > 0 {
		timeout = time.Duration(req.TimeoutMillis) * time.Millisecond
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	wantTrace := r.Header.Get(TraceHeader) == "1"
	var tr *obs.Trace
	if wantTrace || s.slowQuery > 0 {
		tr = obs.NewTrace("dist_search")
		ctx = obs.WithSpan(ctx, tr.Root())
	}
	start := time.Now()
	res, partial, err := s.router.RoutedSearch(ctx, req.Vector, req.K, ef, req.Probes)
	elapsed := time.Since(start)
	rep := tr.Finish()
	if s.slowQuery > 0 && elapsed >= s.slowQuery {
		obs.SlowQueries.Inc()
		tree, _ := json.Marshal(rep)
		s.logf("slow query: dist k=%d elapsed=%s trace=%s", req.K, elapsed, tree)
	}
	if err != nil {
		// Nothing (or too little) answered: 504 when the deadline was
		// the cause, 502 when the shards themselves failed. The
		// Partial report still names the casualties.
		status := http.StatusBadGateway
		if errors.Is(err, context.DeadlineExceeded) {
			status = http.StatusGatewayTimeout
		}
		w.Header().Set(PartialHeader, "true")
		writeJSON(w, status, map[string]any{"error": err.Error(), "partial": partial})
		return
	}
	if !partial.Complete() {
		obs.PartialResponses.Inc()
	}
	// The partial header must be final before writeJSON emits the
	// status line; headers set after that are silently dropped.
	w.Header().Set(PartialHeader, strconv.FormatBool(!partial.Complete()))
	resp := DistSearchResponse{Hits: toDistHits(res)}
	if !partial.Complete() {
		resp.Partial = &partial
	}
	if wantTrace {
		resp.Trace = rep
	}
	writeJSON(w, http.StatusOK, resp)
}

func toDistHits(res []topk.Result) []DistHit {
	out := make([]DistHit, len(res))
	for i, r := range res {
		out[i] = DistHit{ID: r.ID, Dist: r.Dist}
	}
	return out
}
