// Package server exposes the VDBMS over HTTP/JSON — the "simple API"
// query-interface style of Section 2.1 used by native systems, plus a
// /query endpoint accepting the full vql language (SELECT / CREATE
// COLLECTION / CREATE INDEX / INSERT / DELETE) for the SQL-extension
// style.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strings"
	"time"

	"vdbms"
	"vdbms/internal/memory"
	"vdbms/internal/obs"
	"vdbms/internal/vql"
)

// TraceHeader, when set to "1" on a search request, asks the server to
// return the query's span tree in the response Trace field.
const TraceHeader = "X-Vdbms-Trace"

// PlanHeader is set on every search response; it reports the plan the
// optimizer executed and the resolved search parameters, e.g.
// "pre_filter;ef=64;nprobe=0;source=tuned". One header read answers
// "what did the planner do" without asking for a full trace.
const PlanHeader = "X-Vdbms-Plan"

// Server wraps a DB with HTTP handlers.
type Server struct {
	db           *vdbms.DB
	mux          *http.ServeMux
	queryTimeout time.Duration
	slowQuery    time.Duration
	parallelism  int
	logf         func(format string, args ...any)
	mem          *memory.Manager
}

// Option configures a Server.
type Option func(*Server)

// WithQueryTimeout bounds every search with a server-side deadline on
// top of the request context (0 = requests run until the client
// disconnects).
func WithQueryTimeout(d time.Duration) Option {
	return func(s *Server) { s.queryTimeout = d }
}

// WithSlowQueryLog logs any search slower than d, with its span tree,
// and counts it in vdbms_slow_query_total. Tracing is forced on for
// every search so the offending stages are in the log; the trace is
// still stripped from responses that did not ask for it. 0 disables.
func WithSlowQueryLog(d time.Duration) Option {
	return func(s *Server) { s.slowQuery = d }
}

// WithParallelism sets the default intra-query worker count applied
// to searches whose body does not carry its own "parallelism" field
// (0 = every CPU, 1 = serial). Per-request values always win.
func WithParallelism(n int) Option {
	return func(s *Server) { s.parallelism = n }
}

// WithLogf redirects the server's log output (used by tests).
func WithLogf(f func(format string, args ...any)) Option {
	return func(s *Server) { s.logf = f }
}

// WithMemoryManager wires the process memory budget manager into the
// serving path: while the manager sits at the Shed rung, work-carrying
// requests (searches, inserts, queries) are refused with 503 and a
// Retry-After header instead of growing the heap until the kernel
// kills the process. Introspection endpoints (/metrics, /healthz,
// /debug/*) never shed — an operator diagnosing the pressure needs
// them most exactly then. The manager's status is also surfaced under
// "memory" in /debug/stats.
func WithMemoryManager(m *memory.Manager) Option {
	return func(s *Server) { s.mem = m }
}

// New builds the handler set around db.
func New(db *vdbms.DB, opts ...Option) *Server {
	s := &Server{db: db, mux: http.NewServeMux(), logf: log.Printf}
	for _, o := range opts {
		o(s)
	}
	s.mux.HandleFunc("/collections", s.handleCollections)
	s.mux.HandleFunc("/collections/", s.handleCollection)
	s.mux.HandleFunc("/query", s.handleQuery)
	s.mux.Handle("/metrics", obs.MetricsHandler(obs.Default()))
	s.mux.Handle("/debug/stats", obs.StatsHandlerExtras(obs.Default(), s.collectionStats))
	s.mux.Handle("/debug/slowlog", obs.SlowLogHandler(obs.DefaultSlowLog()))
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	return s
}

// collectionStats assembles the per-collection online statistics
// section of /debug/stats (row churn, query shapes, selectivity,
// probe cost — see DESIGN.md §11).
func (s *Server) collectionStats() map[string]any {
	cols := map[string]any{}
	for _, name := range s.db.Collections() {
		col, err := s.db.Collection(name)
		if err != nil {
			continue
		}
		cols[name] = col.Stats()
	}
	out := map[string]any{"collections": cols}
	if s.mem != nil {
		out["memory"] = s.mem.Status()
	}
	return out
}

// shed refuses one work-carrying request while the budget manager sits
// at the Shed rung, reporting true after writing the 503. The shed is
// counted only here — where a request is actually refused.
func (s *Server) shed(w http.ResponseWriter) bool {
	if s.mem == nil || !s.mem.ShouldShed() {
		return false
	}
	s.mem.CountShed()
	w.Header().Set("Retry-After", fmt.Sprintf("%d", int(s.mem.RetryAfter.Seconds()+0.5)))
	writeErr(w, http.StatusServiceUnavailable, fmt.Errorf("server over memory budget; retry"))
	return true
}

// handleHealthz reports liveness plus index build state: one line per
// collection with a background build in flight. A building index is
// healthy (queries ride on the previous build), so the status stays
// 200 — the lines exist so operators and probes can see maintenance
// pressure without scraping /metrics.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
	for _, name := range s.db.Collections() {
		col, err := s.db.Collection(name)
		if err != nil {
			continue
		}
		if kind, _, dirty, building := col.IndexStatus(); building {
			fmt.Fprintf(w, "index_build collection=%s kind=%s dirty=%d\n", name, kind, dirty)
		}
	}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	obs.HTTPRequests.With(routeLabel(r.URL.Path)).Inc()
	s.mux.ServeHTTP(w, r)
}

// routeLabel collapses request paths onto their route pattern so the
// per-path request counter keeps a bounded label set (collection names
// must not mint metric series).
func routeLabel(path string) string {
	if strings.HasPrefix(path, "/collections/") {
		return "/collections/*"
	}
	return path
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// The status line is already out, so the client sees a truncated
		// body; count it instead of losing the failure silently.
		obs.HTTPEncodeErrors.Inc()
	}
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// searchCtx derives the per-query context: the request context (which
// ends when the client disconnects) bounded by the server's query
// timeout.
func (s *Server) searchCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.queryTimeout > 0 {
		return context.WithTimeout(r.Context(), s.queryTimeout)
	}
	return context.WithCancel(r.Context())
}

// searchErrStatus maps a failed search to an HTTP status: deadline
// overruns are 504s, everything else a 400 (malformed request).
func searchErrStatus(err error) int {
	if errors.Is(err, context.DeadlineExceeded) {
		return http.StatusGatewayTimeout
	}
	return http.StatusBadRequest
}

// CreateCollectionRequest is the body of POST /collections.
type CreateCollectionRequest struct {
	Name   string       `json:"name"`
	Schema vdbms.Schema `json:"schema"`
}

func (s *Server) handleCollections(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, map[string]any{"collections": s.db.Collections()})
	case http.MethodPost:
		var req CreateCollectionRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		if _, err := s.db.CreateCollection(req.Name, req.Schema); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusCreated, map[string]string{"name": req.Name})
	default:
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
	}
}

// InsertRequest is the body of POST /collections/{name}/vectors.
type InsertRequest struct {
	Vector []float32      `json:"vector"`
	Attrs  map[string]any `json:"attrs"`
}

// IndexRequest is the body of POST /collections/{name}/index.
type IndexRequest struct {
	Kind string         `json:"kind"`
	Opts map[string]int `json:"opts"`
}

// SearchBody mirrors vdbms.SearchRequest for JSON transport.
type SearchBody struct {
	Vector       []float32      `json:"vector"`
	Vectors      [][]float32    `json:"vectors,omitempty"`
	K            int            `json:"k"`
	Filters      []vdbms.Filter `json:"filters,omitempty"`
	Policy       string         `json:"policy,omitempty"`
	Ef           int            `json:"ef,omitempty"`
	NProbe       int            `json:"nprobe,omitempty"`
	TargetRecall float64        `json:"target_recall,omitempty"`
	Alpha        int            `json:"alpha,omitempty"`
	RerankK      int            `json:"rerank_k,omitempty"`
	Parallelism  int            `json:"parallelism,omitempty"`
	EntityColumn string         `json:"entity_column,omitempty"`
	Aggregator   string         `json:"aggregator,omitempty"`
}

func (s *Server) handleCollection(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/collections/")
	parts := strings.Split(rest, "/")
	name := parts[0]
	if name == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("missing collection name"))
		return
	}
	if len(parts) == 1 {
		switch r.Method {
		case http.MethodDelete:
			if err := s.db.DropCollection(name); err != nil {
				writeErr(w, http.StatusNotFound, err)
				return
			}
			writeJSON(w, http.StatusOK, map[string]string{"dropped": name})
		case http.MethodGet:
			col, err := s.db.Collection(name)
			if err != nil {
				writeErr(w, http.StatusNotFound, err)
				return
			}
			kind, covered, dirty, building := col.IndexStatus()
			durable, lastLSN, ckptLSN := col.Durability()
			writeJSON(w, http.StatusOK, map[string]any{
				"name": col.Name(), "dim": col.Dim(), "len": col.Len(),
				"index": kind, "index_covered": covered, "index_dirty": dirty,
				"index_building": building,
				"durable":        durable, "wal_lsn": lastLSN, "checkpoint_lsn": ckptLSN,
				"stats": col.Stats(),
			})
		default:
			writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		}
		return
	}
	col, err := s.db.Collection(name)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	// Every POST action below carries real work (inserts grow the heap,
	// searches and index builds allocate); refuse them all while over
	// budget rather than distinguishing — the client retry is uniform.
	if s.shed(w) {
		return
	}
	switch parts[1] {
	case "vectors":
		var req InsertRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		id, err := col.Insert(req.Vector, normalizeAttrs(col, req.Attrs))
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusCreated, map[string]int64{"id": id})
	case "index":
		var req IndexRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		if err := col.CreateIndex(req.Kind, req.Opts); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusCreated, map[string]string{"index": req.Kind})
	case "search":
		var req SearchBody
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		for i := range req.Filters {
			req.Filters[i] = normalizeFilter(col, req.Filters[i])
		}
		ctx, cancel := s.searchCtx(r)
		defer cancel()
		// Tracing is on when the client asks (X-Vdbms-Trace: 1) or the
		// slow-query log needs span trees to be useful.
		wantTrace := r.Header.Get(TraceHeader) == "1"
		par := req.Parallelism
		if par == 0 {
			par = s.parallelism
		}
		start := time.Now()
		res, err := col.SearchContext(ctx, vdbms.SearchRequest{
			Vector: req.Vector, Vectors: req.Vectors, K: req.K,
			Filters: req.Filters, Policy: req.Policy, Ef: req.Ef,
			NProbe: req.NProbe, TargetRecall: req.TargetRecall,
			Alpha: req.Alpha, RerankK: req.RerankK,
			Parallelism:  par,
			EntityColumn: req.EntityColumn, Aggregator: req.Aggregator,
			Trace: wantTrace || s.slowQuery > 0,
		})
		elapsed := time.Since(start)
		if err != nil {
			writeErr(w, searchErrStatus(err), err)
			return
		}
		w.Header().Set(PlanHeader, fmt.Sprintf("%s;ef=%d;nprobe=%d;source=%s",
			res.Plan, res.Ef, res.NProbe, res.ParamSource))
		if res.Trace != nil {
			// Traced queries compete for a slot among the slowest
			// exemplars retained for /debug/slowlog.
			obs.DefaultSlowLog().Offer(obs.SlowLogEntry{
				Collection:    name,
				K:             req.K,
				DurationNanos: elapsed.Nanoseconds(),
				When:          start,
				Trace:         res.Trace,
			})
		}
		if s.slowQuery > 0 && elapsed >= s.slowQuery {
			obs.SlowQueries.Inc()
			tree, _ := json.Marshal(res.Trace)
			s.logf("slow query: collection=%s k=%d elapsed=%s trace=%s",
				name, req.K, elapsed, tree)
		}
		if !wantTrace {
			res.Trace = nil
		}
		writeJSON(w, http.StatusOK, res)
	case "batch":
		// POST /collections/{name}/batch answers many queries in one
		// round trip. Vectors carries the batch; the remaining fields
		// are the shared execution knobs (k, filters, policy, ef,
		// nprobe, alpha, parallelism). Partial failures follow the
		// library contract: failed slots are null and "error" names
		// each failing query, alongside HTTP 200 for the successes.
		var req SearchBody
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		if len(req.Vectors) == 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("batch search needs vectors"))
			return
		}
		for i := range req.Filters {
			req.Filters[i] = normalizeFilter(col, req.Filters[i])
		}
		par := req.Parallelism
		if par == 0 {
			par = s.parallelism
		}
		hits, err := col.SearchBatch(req.Vectors, vdbms.SearchRequest{
			K: req.K, Filters: req.Filters, Policy: req.Policy,
			Ef: req.Ef, NProbe: req.NProbe, TargetRecall: req.TargetRecall,
			Alpha: req.Alpha, RerankK: req.RerankK, Parallelism: par,
		})
		if err != nil && hits == nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		body := map[string]any{"results": hits}
		if err != nil {
			body["error"] = err.Error()
			obs.PartialResponses.Inc()
		}
		writeJSON(w, http.StatusOK, body)
	default:
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown action %q", parts[1]))
	}
}

// QueryRequest is the body of POST /query.
type QueryRequest struct {
	Query string `json:"query"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	if s.shed(w) {
		return
	}
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	res, err := vql.Run(s.db, req.Query)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// normalizeAttrs coerces JSON numbers (always float64 after decoding)
// to the column's declared type so "cat": 3 binds to int columns while
// float columns keep float64 values. Unknown columns pass through and
// fail schema validation downstream.
func normalizeAttrs(col *vdbms.Collection, attrs map[string]any) map[string]any {
	if attrs == nil {
		return nil
	}
	types := col.AttributeTypes()
	out := make(map[string]any, len(attrs))
	for k, v := range attrs {
		out[k] = coerce(types[k], v)
	}
	return out
}

func coerce(typ string, v any) any {
	f, ok := v.(float64)
	if !ok {
		return v
	}
	if typ == "int" {
		return int64(f)
	}
	return f
}

func normalizeFilter(col *vdbms.Collection, f vdbms.Filter) vdbms.Filter {
	typ := col.AttributeTypes()[f.Column]
	f.Value = coerce(typ, f.Value)
	for i := range f.Set {
		f.Set[i] = coerce(typ, f.Set[i])
	}
	return f
}
