package server

import (
	"net/http"
	"strconv"
	"strings"
	"testing"

	"vdbms"
	"vdbms/internal/memory"
)

// shedServer builds a server whose budget manager sits at the Shed
// rung: a stopped manager (no actor) with a phantom account holding
// more bytes than the budget.
func shedServer(t *testing.T) (*Server, *memory.Manager) {
	t.Helper()
	db := vdbms.New()
	col, err := db.CreateCollection("docs", vdbms.Schema{Dim: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := col.Insert([]float32{1, 0, 0, 0}, nil); err != nil {
		t.Fatal(err)
	}
	m := memory.New(1 << 20)
	m.Close()
	m.Register("phantom").Set(memory.CatVectors, 2<<20)
	if m.Stage() != memory.StageShed {
		t.Fatalf("stage %v, want shed", m.Stage())
	}
	return New(db, WithMemoryManager(m)), m
}

func TestShedRefusesWork(t *testing.T) {
	srv, m := shedServer(t)
	workPaths := []struct {
		path string
		body any
	}{
		{"/collections/docs/vectors", map[string]any{"vector": []float32{0, 1, 0, 0}}},
		{"/collections/docs/index", map[string]any{"kind": "hnsw"}},
		{"/collections/docs/search", map[string]any{"vector": []float32{1, 0, 0, 0}, "k": 1}},
		{"/collections/docs/batch", map[string]any{"vectors": [][]float32{{1, 0, 0, 0}}, "k": 1}},
		{"/query", map[string]any{"query": "SELECT 1 FROM docs NEAR [1,0,0,0]"}},
	}
	for _, w := range workPaths {
		rec, _ := doJSON(t, srv, "POST", w.path, w.body)
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("POST %s = %d, want 503 at shed stage", w.path, rec.Code)
		}
		ra := rec.Header().Get("Retry-After")
		if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
			t.Fatalf("POST %s Retry-After = %q, want a positive integer", w.path, ra)
		}
	}
	if got := m.Sheds.Load(); got != int64(len(workPaths)) {
		t.Fatalf("shed counter %d, want %d", got, len(workPaths))
	}

	// Introspection must keep answering — operators debug through it.
	for _, path := range []string{"/healthz", "/metrics", "/debug/stats", "/collections", "/collections/docs"} {
		rec, _ := doJSON(t, srv, "GET", path, nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("GET %s = %d at shed stage, want 200", path, rec.Code)
		}
	}
	// Collection management (create/drop) is control-plane, not
	// work-carrying: dropping a collection is how an operator sheds load.
	rec, _ := doJSON(t, srv, "DELETE", "/collections/docs", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("DELETE at shed stage = %d, want 200", rec.Code)
	}
}

func TestShedClearsWithPressure(t *testing.T) {
	srv, m := shedServer(t)
	m.Register("phantom").Set(memory.CatVectors, 0)
	m.Step() // re-evaluate the rung after the release
	if m.Stage() != memory.StageNormal {
		t.Fatalf("stage %v after pressure cleared, want normal", m.Stage())
	}
	rec, _ := doJSON(t, srv, "POST", "/collections/docs/search",
		map[string]any{"vector": []float32{1, 0, 0, 0}, "k": 1})
	if rec.Code != http.StatusOK {
		t.Fatalf("search after pressure cleared = %d, want 200", rec.Code)
	}
	if got := m.Sheds.Load(); got != 0 {
		t.Fatalf("shed counter %d after zero refusals, want 0", got)
	}
}

func TestDebugStatsReportsMemory(t *testing.T) {
	srv, _ := shedServer(t)
	rec, out := doJSON(t, srv, "GET", "/debug/stats", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/stats = %d", rec.Code)
	}
	mem, ok := out["memory"].(map[string]any)
	if !ok {
		t.Fatalf("/debug/stats has no memory block: %v", out)
	}
	if mem["stage"] != "shed" {
		t.Fatalf("stage = %v, want shed", mem["stage"])
	}
	if mem["budget_bytes"].(float64) != 1<<20 {
		t.Fatalf("budget_bytes = %v", mem["budget_bytes"])
	}
}

func TestMemMetricsExposed(t *testing.T) {
	srv, _ := shedServer(t)
	// Refuse one request so the shed counter is nonzero.
	doJSON(t, srv, "POST", "/collections/docs/search",
		map[string]any{"vector": []float32{1, 0, 0, 0}, "k": 1})
	rec, _ := doJSON(t, srv, "GET", "/metrics", nil)
	body := rec.Body.String()
	for _, metric := range []string{
		"vdbms_mem_budget_bytes",
		"vdbms_mem_resident_bytes",
		"vdbms_mem_stage",
		"vdbms_mem_shed_total",
	} {
		if !strings.Contains(body, metric) {
			t.Fatalf("/metrics missing %s", metric)
		}
	}
}
