package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"vdbms"
	"vdbms/internal/dataset"
)

func doJSON(t *testing.T, h http.Handler, method, path string, body any) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req := httptest.NewRequest(method, path, &buf)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	out := map[string]any{}
	if rec.Body.Len() > 0 {
		_ = json.Unmarshal(rec.Body.Bytes(), &out)
	}
	return rec, out
}

func TestHTTPLifecycle(t *testing.T) {
	srv := New(vdbms.New())

	rec, _ := doJSON(t, srv, "POST", "/collections", CreateCollectionRequest{
		Name: "docs",
		Schema: vdbms.Schema{
			Dim:        4,
			Attributes: map[string]string{"cat": "int", "score": "float"},
		},
	})
	if rec.Code != http.StatusCreated {
		t.Fatalf("create: %d %s", rec.Code, rec.Body)
	}
	// Duplicate fails.
	rec, _ = doJSON(t, srv, "POST", "/collections", CreateCollectionRequest{
		Name: "docs", Schema: vdbms.Schema{Dim: 4},
	})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("duplicate create: %d", rec.Code)
	}
	// List.
	rec, out := doJSON(t, srv, "GET", "/collections", nil)
	if rec.Code != http.StatusOK || len(out["collections"].([]any)) != 1 {
		t.Fatalf("list: %d %v", rec.Code, out)
	}
	// Insert rows.
	ds := dataset.Clustered(100, 4, 3, 0.3, 1)
	for i := 0; i < 100; i++ {
		rec, out = doJSON(t, srv, "POST", "/collections/docs/vectors", InsertRequest{
			Vector: ds.Row(i),
			Attrs:  map[string]any{"cat": i % 5, "score": float64(i) + 0.5},
		})
		if rec.Code != http.StatusCreated {
			t.Fatalf("insert %d: %d %s", i, rec.Code, rec.Body)
		}
	}
	// Collection info.
	rec, out = doJSON(t, srv, "GET", "/collections/docs", nil)
	if rec.Code != http.StatusOK || out["len"].(float64) != 100 {
		t.Fatalf("info: %d %v", rec.Code, out)
	}
	// Build index.
	rec, _ = doJSON(t, srv, "POST", "/collections/docs/index", IndexRequest{Kind: "hnsw", Opts: map[string]int{"m": 8}})
	if rec.Code != http.StatusCreated {
		t.Fatalf("index: %d %s", rec.Code, rec.Body)
	}
	// Search with an int filter sent as a JSON number.
	rec, out = doJSON(t, srv, "POST", "/collections/docs/search", SearchBody{
		Vector: ds.Row(7), K: 5, Ef: 100,
		Filters: []vdbms.Filter{{Column: "cat", Op: "=", Value: 2.0}},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("search: %d %s", rec.Code, rec.Body)
	}
	hits := out["Hits"].([]any)
	if len(hits) == 0 {
		t.Fatal("no hits")
	}
	for _, h := range hits {
		id := int64(h.(map[string]any)["ID"].(float64))
		if id%5 != 2 {
			t.Fatalf("filter violated: %d", id)
		}
	}
	// Float filter works too.
	rec, out = doJSON(t, srv, "POST", "/collections/docs/search", SearchBody{
		Vector: ds.Row(7), K: 5,
		Filters: []vdbms.Filter{{Column: "score", Op: "<", Value: 50}},
	})
	if rec.Code != http.StatusOK || len(out["Hits"].([]any)) == 0 {
		t.Fatalf("float filter: %d %v", rec.Code, out)
	}
	// VQL endpoint.
	rec, out = doJSON(t, srv, "POST", "/query", QueryRequest{
		Query: fmt.Sprintf("SELECT 3 FROM docs NEAR [%f, %f, %f, %f]", ds.Row(7)[0], ds.Row(7)[1], ds.Row(7)[2], ds.Row(7)[3]),
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("vql: %d %s", rec.Code, rec.Body)
	}
	search := out["Search"].(map[string]any)
	if hits := search["Hits"].([]any); int64(hits[0].(map[string]any)["ID"].(float64)) != 7 {
		t.Fatalf("vql hits: %v", hits)
	}
	// DDL and DML through /query.
	rec, out = doJSON(t, srv, "POST", "/query", QueryRequest{Query: "CREATE COLLECTION q2 DIM 2"})
	if rec.Code != http.StatusOK || out["Kind"].(string) != "create_collection" {
		t.Fatalf("vql create: %d %v", rec.Code, out)
	}
	rec, out = doJSON(t, srv, "POST", "/query", QueryRequest{Query: "INSERT INTO q2 VECTOR [1, 2]"})
	if rec.Code != http.StatusOK || out["Kind"].(string) != "insert" {
		t.Fatalf("vql insert: %d %v", rec.Code, out)
	}
	// Drop.
	rec, _ = doJSON(t, srv, "DELETE", "/collections/docs", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("drop: %d", rec.Code)
	}
	rec, _ = doJSON(t, srv, "DELETE", "/collections/docs", nil)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("double drop: %d", rec.Code)
	}
}

func TestHTTPErrors(t *testing.T) {
	srv := New(vdbms.New())
	cases := []struct {
		method, path string
		body         any
		want         int
	}{
		{"PUT", "/collections", nil, http.StatusMethodNotAllowed},
		{"GET", "/collections/missing", nil, http.StatusNotFound},
		{"POST", "/collections/missing/search", SearchBody{}, http.StatusNotFound},
		{"POST", "/query", QueryRequest{Query: "garbage"}, http.StatusBadRequest},
		{"GET", "/query", nil, http.StatusMethodNotAllowed},
		{"POST", "/collections/", nil, http.StatusBadRequest},
	}
	for _, tc := range cases {
		rec, _ := doJSON(t, srv, tc.method, tc.path, tc.body)
		if rec.Code != tc.want {
			t.Fatalf("%s %s: %d, want %d", tc.method, tc.path, rec.Code, tc.want)
		}
	}
	// Bad JSON body.
	req := httptest.NewRequest("POST", "/collections", bytes.NewBufferString("{"))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad json: %d", rec.Code)
	}
	// Health.
	req = httptest.NewRequest("GET", "/healthz", nil)
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("health: %d", rec.Code)
	}
	// Unknown action and wrong method on subresource.
	if _, err := vdbms.New().CreateCollection("c", vdbms.Schema{Dim: 2}); err != nil {
		t.Fatal(err)
	}
	srv2db := vdbms.New()
	srv2db.CreateCollection("c", vdbms.Schema{Dim: 2})
	srv2 := New(srv2db)
	rec2, _ := doJSON(t, srv2, "POST", "/collections/c/bogus", map[string]any{})
	if rec2.Code != http.StatusNotFound {
		t.Fatalf("unknown action: %d", rec2.Code)
	}
	rec2, _ = doJSON(t, srv2, "GET", "/collections/c/search", nil)
	if rec2.Code != http.StatusMethodNotAllowed {
		t.Fatalf("wrong method: %d", rec2.Code)
	}
}

func TestBatchSearchEndpoint(t *testing.T) {
	srv := New(vdbms.New())
	rec, _ := doJSON(t, srv, "POST", "/collections", CreateCollectionRequest{
		Name:   "docs",
		Schema: vdbms.Schema{Dim: 4, Attributes: map[string]string{"cat": "int"}},
	})
	if rec.Code != http.StatusCreated {
		t.Fatalf("create: %d %s", rec.Code, rec.Body)
	}
	ds := dataset.Clustered(60, 4, 3, 0.3, 2)
	for i := 0; i < 60; i++ {
		rec, _ = doJSON(t, srv, "POST", "/collections/docs/vectors", InsertRequest{
			Vector: ds.Row(i), Attrs: map[string]any{"cat": i % 5},
		})
		if rec.Code != http.StatusCreated {
			t.Fatalf("insert %d: %d %s", i, rec.Code, rec.Body)
		}
	}
	rec, _ = doJSON(t, srv, "POST", "/collections/docs/index", IndexRequest{Kind: "hnsw", Opts: map[string]int{"m": 8}})
	if rec.Code != http.StatusCreated {
		t.Fatalf("index: %d %s", rec.Code, rec.Body)
	}

	// One round trip answers three queries; the knobs (k, filter, ef)
	// are shared by every slot.
	rec, out := doJSON(t, srv, "POST", "/collections/docs/batch", SearchBody{
		Vectors: [][]float32{ds.Row(3), ds.Row(9), ds.Row(21)},
		K:       4, Ef: 64,
		Filters: []vdbms.Filter{{Column: "cat", Op: "=", Value: 2.0}},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("batch: %d %s", rec.Code, rec.Body)
	}
	results := out["results"].([]any)
	if len(results) != 3 {
		t.Fatalf("results: %v", out)
	}
	for q, slot := range results {
		hits := slot.([]any)
		if len(hits) == 0 {
			t.Fatalf("query %d: no hits", q)
		}
		prev := -1.0
		for _, h := range hits {
			m := h.(map[string]any)
			if id := int64(m["ID"].(float64)); id%5 != 2 {
				t.Fatalf("query %d: filter violated by id %d", q, id)
			}
			if d := m["Dist"].(float64); d < prev {
				t.Fatalf("query %d: unsorted hits", q)
			} else {
				prev = d
			}
		}
	}

	// An empty batch is a client error, as is a missing collection.
	rec, _ = doJSON(t, srv, "POST", "/collections/docs/batch", SearchBody{K: 2})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("empty batch: %d", rec.Code)
	}
	rec, _ = doJSON(t, srv, "POST", "/collections/nope/batch", SearchBody{Vectors: [][]float32{ds.Row(0)}, K: 2})
	if rec.Code != http.StatusNotFound {
		t.Fatalf("missing collection: %d", rec.Code)
	}

	// Collection info now reports background build state.
	rec, out = doJSON(t, srv, "GET", "/collections/docs", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("info: %d", rec.Code)
	}
	if _, ok := out["index_building"].(bool); !ok {
		t.Fatalf("info missing index_building: %v", out)
	}
}

func TestSearchQueryTimeout(t *testing.T) {
	db := vdbms.New()
	if _, err := db.CreateCollection("c", vdbms.Schema{Dim: 4}); err != nil {
		t.Fatal(err)
	}
	col, _ := db.Collection("c")
	ds := dataset.Uniform(50, 4, 1)
	for i := 0; i < 50; i++ {
		if _, err := col.Insert(ds.Row(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	// An already-exhausted budget must surface as a 504, not a 400/500.
	srv := New(db, WithQueryTimeout(time.Nanosecond))
	rec, out := doJSON(t, srv, "POST", "/collections/c/search", SearchBody{Vector: ds.Row(0), K: 3})
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("timed-out search: %d %v", rec.Code, out)
	}
	// A generous budget behaves normally.
	srv = New(db, WithQueryTimeout(time.Minute))
	rec, out = doJSON(t, srv, "POST", "/collections/c/search", SearchBody{Vector: ds.Row(0), K: 3})
	if rec.Code != http.StatusOK || len(out["Hits"].([]any)) != 3 {
		t.Fatalf("search under budget: %d %v", rec.Code, out)
	}
}

// TestPlanHeaderAndKnobPropagation is the end-to-end audit of search
// parameter propagation: a knob set in the HTTP body must arrive at
// the index probe unchanged, an unset knob must stay unset at every
// layer (never dropped to a different default mid-stack), and the
// X-Vdbms-Plan response header must report exactly what ran. The
// layers crossed: JSON body -> vdbms.SearchRequest -> core.Request ->
// resolveKnobs -> executor.Options -> index.Params.
func TestPlanHeaderAndKnobPropagation(t *testing.T) {
	srv := New(vdbms.New())
	rec, _ := doJSON(t, srv, "POST", "/collections", CreateCollectionRequest{
		Name: "tuned", Schema: vdbms.Schema{Dim: 4},
	})
	if rec.Code != http.StatusCreated {
		t.Fatalf("create: %d %s", rec.Code, rec.Body)
	}
	ds := dataset.Clustered(400, 4, 3, 0.3, 5)
	for i := 0; i < 400; i++ {
		rec, _ = doJSON(t, srv, "POST", "/collections/tuned/vectors", InsertRequest{Vector: ds.Row(i)})
		if rec.Code != http.StatusCreated {
			t.Fatalf("insert %d: %d %s", i, rec.Code, rec.Body)
		}
	}
	rec, _ = doJSON(t, srv, "POST", "/collections/tuned/index", IndexRequest{Kind: "hnsw", Opts: map[string]int{"m": 8}})
	if rec.Code != http.StatusCreated {
		t.Fatalf("index: %d %s", rec.Code, rec.Body)
	}

	search := func(body SearchBody) (*httptest.ResponseRecorder, string) {
		t.Helper()
		body.Vector, body.K = ds.Row(0), 5
		rec, _ := doJSON(t, srv, "POST", "/collections/tuned/search", body)
		if rec.Code != http.StatusOK {
			t.Fatalf("search %+v: %d %s", body, rec.Code, rec.Body)
		}
		h := rec.Header().Get(PlanHeader)
		if h == "" {
			t.Fatalf("search %+v: no %s header", body, PlanHeader)
		}
		return rec, h
	}

	// Explicit ef survives the whole stack and is reported verbatim.
	if _, h := search(SearchBody{Ef: 64}); !strings.HasSuffix(h, ";ef=64;nprobe=0;source=explicit") {
		t.Fatalf("explicit ef header: %q", h)
	}
	// An explicit nprobe alone leaves ef unset (0) — the zero must not
	// be backfilled from any other layer.
	if _, h := search(SearchBody{NProbe: 2}); !strings.HasSuffix(h, ";ef=0;nprobe=2;source=explicit") {
		t.Fatalf("explicit nprobe header: %q", h)
	}
	// A recall target with a cold tuner resolves to the safe default:
	// the ef ladder maximum.
	if _, h := search(SearchBody{TargetRecall: 0.9}); !strings.HasSuffix(h, ";ef=512;nprobe=0;source=safe_default") {
		t.Fatalf("target header: %q", h)
	}
	// Nothing set: zeros pass through to the index's own defaults.
	if _, h := search(SearchBody{}); !strings.HasSuffix(h, ";ef=0;nprobe=0;source=index_default") {
		t.Fatalf("default header: %q", h)
	}
	// The header names the executed plan, matching the body's Plan.
	rec, h := search(SearchBody{Ef: 32})
	var res vdbms.SearchResult
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.Plan == "" || !strings.HasPrefix(h, res.Plan+";") {
		t.Fatalf("header %q does not lead with body plan %q", h, res.Plan)
	}
	if res.Ef != 32 || res.ParamSource != "explicit" {
		t.Fatalf("body decision: %+v", res)
	}
}
