package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"vdbms"
	"vdbms/internal/dataset"
	"vdbms/internal/dist"
	"vdbms/internal/fault"
	"vdbms/internal/obs"
)

// scrapeMetric fetches /metrics from h and returns the value of the
// exactly-named sample (family plus rendered labels), with ok=false
// when the series is absent.
func scrapeMetric(t *testing.T, h http.Handler, name string) (float64, bool) {
	t.Helper()
	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics: %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}
	sc := bufio.NewScanner(rec.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 || line[:sp] != name {
			continue
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("unparseable sample %q: %v", line, err)
		}
		return v, true
	}
	return 0, false
}

func searchServer(t *testing.T) (*Server, *dataset.Dataset) {
	t.Helper()
	db := vdbms.New()
	col, err := db.CreateCollection("c", vdbms.Schema{Dim: 8})
	if err != nil {
		t.Fatal(err)
	}
	ds := dataset.Uniform(200, 8, 11)
	for i := 0; i < ds.Count; i++ {
		if _, err := col.Insert(ds.Row(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	return New(db), ds
}

func TestMetricsEndpointAfterSearch(t *testing.T) {
	srv, ds := searchServer(t)
	before, _ := scrapeMetric(t, srv, "vdbms_search_total")
	countBefore, _ := scrapeMetric(t, srv, `vdbms_search_latency_seconds_count{collection="c"}`)

	for i := 0; i < 3; i++ {
		rec, _ := doJSON(t, srv, "POST", "/collections/c/search", SearchBody{Vector: ds.Row(i), K: 5})
		if rec.Code != http.StatusOK {
			t.Fatalf("search: %d %s", rec.Code, rec.Body)
		}
	}

	// Counter monotonicity: exactly the three searches were added.
	after, ok := scrapeMetric(t, srv, "vdbms_search_total")
	if !ok || after != before+3 {
		t.Fatalf("vdbms_search_total = %v (before %v), want +3", after, before)
	}
	// Histogram invariants: _count advanced with the searches and the
	// +Inf bucket equals _count (every observation lands somewhere).
	count, ok := scrapeMetric(t, srv, `vdbms_search_latency_seconds_count{collection="c"}`)
	if !ok || count != countBefore+3 {
		t.Fatalf("latency _count = %v (before %v), want +3", count, countBefore)
	}
	inf, ok := scrapeMetric(t, srv, `vdbms_search_latency_seconds_bucket{collection="c",le="+Inf"}`)
	if !ok || inf != count {
		t.Fatalf("+Inf bucket = %v, want _count %v", inf, count)
	}
	// Per-index probe attribution for the flat scan that served the
	// unindexed collection.
	if v, ok := scrapeMetric(t, srv, `vdbms_index_probe_total{index="flat"}`); !ok || v < 3 {
		t.Fatalf(`vdbms_index_probe_total{index="flat"} = %v, want >= 3`, v)
	}
}

func TestDebugStats(t *testing.T) {
	srv, _ := searchServer(t)
	rec, out := doJSON(t, srv, "GET", "/debug/stats", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/stats: %d", rec.Code)
	}
	for _, key := range []string{"counters", "histograms", "runtime"} {
		if _, ok := out[key]; !ok {
			t.Fatalf("/debug/stats missing %q: %v", key, out)
		}
	}
	if g := out["runtime"].(map[string]any)["goroutines"].(float64); g < 1 {
		t.Fatalf("goroutines = %v", g)
	}
}

func TestHealthzContentType(t *testing.T) {
	srv, _ := searchServer(t)
	req := httptest.NewRequest("GET", "/healthz", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz: %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/plain; charset=utf-8" {
		t.Fatalf("healthz Content-Type = %q", ct)
	}
}

// traceSearch POSTs a search with the trace header set and returns the
// decoded body.
func traceSearch(t *testing.T, h http.Handler, path string, body any) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", path, &buf)
	req.Header.Set(TraceHeader, "1")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	out := map[string]any{}
	if rec.Body.Len() > 0 {
		_ = json.Unmarshal(rec.Body.Bytes(), &out)
	}
	return rec, out
}

// sumChildNanos adds up the duration_ns of a span's children.
func sumChildNanos(span map[string]any) float64 {
	total := 0.0
	children, _ := span["children"].([]any)
	for _, c := range children {
		total += c.(map[string]any)["duration_ns"].(float64)
	}
	return total
}

func TestSearchTraceHeader(t *testing.T) {
	srv, ds := searchServer(t)

	// Without the header the response has no trace.
	rec, out := doJSON(t, srv, "POST", "/collections/c/search", SearchBody{Vector: ds.Row(0), K: 5})
	if rec.Code != http.StatusOK {
		t.Fatalf("search: %d %s", rec.Code, rec.Body)
	}
	if _, present := out["Trace"]; present {
		t.Fatal("untraced search leaked a Trace field")
	}

	start := time.Now()
	rec, out = traceSearch(t, srv, "/collections/c/search", SearchBody{Vector: ds.Row(0), K: 5})
	elapsed := time.Since(start)
	if rec.Code != http.StatusOK {
		t.Fatalf("traced search: %d %s", rec.Code, rec.Body)
	}
	root, ok := out["Trace"].(map[string]any)
	if !ok {
		t.Fatalf("no Trace in traced response: %v", out)
	}
	if root["stage"].(string) != "search" {
		t.Fatalf("root stage = %v", root["stage"])
	}
	rootNanos := root["duration_ns"].(float64)
	if rootNanos <= 0 {
		t.Fatal("root span has no duration")
	}
	// The acceptance invariant: stage durations nest — children sum to
	// no more than the root, and the root is bounded by the observed
	// wall time of the whole HTTP call.
	if kids := sumChildNanos(root); kids > rootNanos {
		t.Fatalf("child spans (%v ns) exceed root (%v ns)", kids, rootNanos)
	}
	if rootNanos > float64(elapsed.Nanoseconds()) {
		t.Fatalf("root span (%v ns) exceeds request wall time (%v)", rootNanos, elapsed)
	}
	// The pipeline stages are present.
	stages := map[string]bool{}
	for _, c := range root["children"].([]any) {
		stages[c.(map[string]any)["stage"].(string)] = true
	}
	for _, want := range []string{"plan", "index_probe"} {
		if !stages[want] {
			t.Fatalf("stage %q missing from trace: %v", want, stages)
		}
	}
}

func TestSlowQueryLog(t *testing.T) {
	db := vdbms.New()
	col, err := db.CreateCollection("c", vdbms.Schema{Dim: 8})
	if err != nil {
		t.Fatal(err)
	}
	ds := dataset.Uniform(100, 8, 13)
	for i := 0; i < ds.Count; i++ {
		if _, err := col.Insert(ds.Row(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	var logged []string
	srv := New(db,
		WithSlowQueryLog(time.Nanosecond), // every query is "slow"
		WithLogf(func(format string, args ...any) {
			logged = append(logged, fmt.Sprintf(format, args...))
		}))
	before := obs.SlowQueries.Value()

	rec, out := doJSON(t, srv, "POST", "/collections/c/search", SearchBody{Vector: ds.Row(0), K: 3})
	if rec.Code != http.StatusOK {
		t.Fatalf("search: %d %s", rec.Code, rec.Body)
	}
	if len(logged) != 1 {
		t.Fatalf("slow-query log lines = %d, want 1", len(logged))
	}
	if !strings.Contains(logged[0], "slow query") || !strings.Contains(logged[0], `"stage":"search"`) {
		t.Fatalf("log line missing span tree: %q", logged[0])
	}
	if got := obs.SlowQueries.Value(); got != before+1 {
		t.Fatalf("vdbms_slow_query_total = %d, want %d", got, before+1)
	}
	// The forced trace is server-side only: the client did not ask.
	if _, present := out["Trace"]; present {
		t.Fatal("slow-query tracing leaked into the response")
	}
}

func TestDistHealthzBreakerStates(t *testing.T) {
	ds := dataset.Uniform(200, 8, 17)
	shards := buildShards(t, ds, 2)
	for i := range shards {
		shards[i] = fault.NewChaosShard(shards[i], fault.ChaosConfig{ErrorRate: 1, Seed: int64(i + 1)})
	}
	router := dist.NewRouter(shards, nil, dist.WithShardBreakers(fault.BreakerConfig{
		FailureThreshold: 1,
		Cooldown:         time.Hour, // stays open for the whole test
	}))
	srv := NewDist(router)

	// Healthy at first: every breaker closed.
	rec, out := doJSON(t, srv, "GET", "/healthz", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz before failures: %d", rec.Code)
	}
	for _, b := range out["breakers"].([]any) {
		if b.(string) != "closed" {
			t.Fatalf("initial breakers = %v", out["breakers"])
		}
	}

	// One failing search trips both breakers open.
	if rec, _ = doJSON(t, srv, "POST", "/search", DistSearchRequest{Vector: ds.Row(0), K: 3}); rec.Code != http.StatusBadGateway {
		t.Fatalf("all-shards-failing search: %d, want 502", rec.Code)
	}
	rec, out = doJSON(t, srv, "GET", "/healthz", nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz with all breakers open: %d, want 503", rec.Code)
	}
	if out["healthy"].(bool) {
		t.Fatal("healthy=true with every breaker open")
	}
	for _, b := range out["breakers"].([]any) {
		if b.(string) != "open" {
			t.Fatalf("breakers after trip = %v", out["breakers"])
		}
	}
}

func TestDistTraceUnderChaos(t *testing.T) {
	ds := dataset.Uniform(400, 8, 19)
	shards := buildShards(t, ds, 4)
	shards[2] = fault.NewChaosShard(shards[2], fault.ChaosConfig{ErrorRate: 1, Seed: 5})
	srv := NewDist(dist.NewRouter(shards, nil))
	partialBefore := obs.DistPartial.Value()

	rec, out := traceSearch(t, srv, "/search", DistSearchRequest{Vector: ds.Row(0), K: 5})
	if rec.Code != http.StatusOK {
		t.Fatalf("chaos search: %d %s", rec.Code, rec.Body)
	}
	if rec.Header().Get(PartialHeader) != "true" {
		t.Fatal("partial header not set under chaos")
	}
	if got := obs.DistPartial.Value(); got != partialBefore+1 {
		t.Fatalf("vdbms_dist_partial_total = %d, want %d", got, partialBefore+1)
	}

	root, ok := out["trace"].(map[string]any)
	if !ok {
		t.Fatalf("no trace in traced dist response: %v", out)
	}
	if root["stage"].(string) != "dist_search" {
		t.Fatalf("root stage = %v", root["stage"])
	}
	var fanout map[string]any
	for _, c := range root["children"].([]any) {
		if m := c.(map[string]any); m["stage"].(string) == "shard_fanout" {
			fanout = m
		}
	}
	if fanout == nil {
		t.Fatalf("no shard_fanout span: %v", root)
	}
	if got := fanout["annotations"].(map[string]any); got["targeted"].(float64) != 4 ||
		got["answered"].(float64) != 3 || got["failed"].(float64) != 1 {
		t.Fatalf("fanout annotations = %v", got)
	}
	// Each targeted shard has its own child span, with the chaos shard
	// tagged as the failure.
	statuses := map[string]string{}
	for _, c := range fanout["children"].([]any) {
		m := c.(map[string]any)
		statuses[m["stage"].(string)] = m["tags"].(map[string]any)["status"].(string)
	}
	if len(statuses) != 4 {
		t.Fatalf("shard spans = %v, want 4", statuses)
	}
	if statuses["shard_2"] != "error" {
		t.Fatalf("chaos shard status = %q, want error (%v)", statuses["shard_2"], statuses)
	}
	for _, si := range []string{"shard_0", "shard_1", "shard_3"} {
		if statuses[si] != "ok" {
			t.Fatalf("healthy shard %s status = %q (%v)", si, statuses[si], statuses)
		}
	}
}
