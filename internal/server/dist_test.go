package server

import (
	"net/http"
	"testing"
	"time"

	"vdbms/internal/dataset"
	"vdbms/internal/dist"
	"vdbms/internal/fault"
	"vdbms/internal/index"
)

// buildShards splits ds into parts local shards over flat indexes.
func buildShards(t *testing.T, ds *dataset.Dataset, parts int) []dist.Shard {
	t.Helper()
	p := dist.PartitionRandom(ds.Count, parts, 7)
	partData, partIDs := dist.SplitRows(ds.Data, ds.Count, ds.Dim, p)
	shards := make([]dist.Shard, parts)
	for i := range shards {
		idx, err := index.NewFlat(partData[i], len(partIDs[i]), ds.Dim, nil)
		if err != nil {
			t.Fatal(err)
		}
		shards[i] = dist.NewLocalShard(idx, partIDs[i])
	}
	return shards
}

func TestDistSearchComplete(t *testing.T) {
	ds := dataset.Uniform(400, 8, 1)
	srv := NewDist(dist.NewRouter(buildShards(t, ds, 4), nil))

	rec, out := doJSON(t, srv, "GET", "/healthz", nil)
	if rec.Code != http.StatusOK || out["shards"].(float64) != 4 {
		t.Fatalf("healthz: %d %v", rec.Code, out)
	}

	rec, out = doJSON(t, srv, "POST", "/search", DistSearchRequest{Vector: ds.Row(17), K: 3})
	if rec.Code != http.StatusOK {
		t.Fatalf("search: %d %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get(PartialHeader); got != "false" {
		t.Fatalf("%s = %q on a complete answer", PartialHeader, got)
	}
	if _, present := out["partial"]; present {
		t.Fatal("complete answer must omit the partial field")
	}
	hits := out["hits"].([]any)
	if len(hits) != 3 || hits[0].(map[string]any)["id"].(float64) != 17 {
		t.Fatalf("hits = %v", hits)
	}
}

func TestDistSearchPartialDegradation(t *testing.T) {
	ds := dataset.Uniform(400, 8, 3)
	shards := buildShards(t, ds, 4)
	shards[2] = fault.NewChaosShard(shards[2], fault.ChaosConfig{ErrorRate: 1, Seed: 5})
	srv := NewDist(dist.NewRouter(shards, nil))

	rec, out := doJSON(t, srv, "POST", "/search", DistSearchRequest{Vector: ds.Row(0), K: 5})
	if rec.Code != http.StatusOK {
		t.Fatalf("partial loss must stay a 200: %d %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get(PartialHeader); got != "true" {
		t.Fatalf("%s = %q, want true", PartialHeader, got)
	}
	partial := out["partial"].(map[string]any)
	failed := partial["failed"].([]any)
	if len(failed) != 1 || failed[0].(map[string]any)["shard"].(float64) != 2 {
		t.Fatalf("partial report = %v", partial)
	}
	if len(out["hits"].([]any)) != 5 {
		t.Fatalf("hits = %v", out["hits"])
	}
}

func TestDistSearchAllShardsDown(t *testing.T) {
	ds := dataset.Uniform(100, 8, 5)
	shards := buildShards(t, ds, 2)
	for i := range shards {
		shards[i] = fault.NewChaosShard(shards[i], fault.ChaosConfig{ErrorRate: 1, Seed: int64(i + 1)})
	}
	srv := NewDist(dist.NewRouter(shards, nil))

	rec, out := doJSON(t, srv, "POST", "/search", DistSearchRequest{Vector: ds.Row(0), K: 5})
	if rec.Code != http.StatusBadGateway {
		t.Fatalf("total loss: %d, want 502", rec.Code)
	}
	if len(out["partial"].(map[string]any)["failed"].([]any)) != 2 {
		t.Fatalf("partial = %v", out["partial"])
	}
}

func TestDistSearchDeadlineBoundsHungShard(t *testing.T) {
	ds := dataset.Uniform(400, 8, 7)
	shards := buildShards(t, ds, 4)
	shards[1] = fault.NewChaosShard(shards[1], fault.ChaosConfig{HangRate: 1, Seed: 9})
	srv := NewDist(dist.NewRouter(shards, nil), WithDistQueryTimeout(10*time.Second))

	start := time.Now()
	rec, out := doJSON(t, srv, "POST", "/search",
		DistSearchRequest{Vector: ds.Row(0), K: 5, TimeoutMillis: 100})
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("hung shard stalled the request for %v past a 100ms budget", elapsed)
	}
	if rec.Code != http.StatusOK || rec.Header().Get(PartialHeader) != "true" {
		t.Fatalf("hung-shard search: %d %s", rec.Code, rec.Body)
	}
	failed := out["partial"].(map[string]any)["failed"].([]any)
	if len(failed) != 1 || failed[0].(map[string]any)["shard"].(float64) != 1 {
		t.Fatalf("partial = %v", out["partial"])
	}
}

func TestDistSearchValidation(t *testing.T) {
	ds := dataset.Uniform(50, 8, 9)
	srv := NewDist(dist.NewRouter(buildShards(t, ds, 2), nil))
	if rec, _ := doJSON(t, srv, "POST", "/search", DistSearchRequest{Vector: ds.Row(0)}); rec.Code != http.StatusBadRequest {
		t.Fatalf("k=0: %d", rec.Code)
	}
	if rec, _ := doJSON(t, srv, "GET", "/search", nil); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET: %d", rec.Code)
	}
}
