// Package bitset provides the dense bitmap used for block-first hybrid
// scans (Section 2.3): attribute filtering produces a bitmask over row
// ids that the index scan consults to decide whether a vector is
// blocked.
package bitset

import "math/bits"

// Bitset is a fixed-capacity dense bit vector. The zero value is an
// empty bitset of capacity 0; use New for a sized one.
type Bitset struct {
	words []uint64
	n     int
}

// New returns a bitset able to hold n bits, all clear.
func New(n int) *Bitset {
	return &Bitset{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the capacity in bits.
func (b *Bitset) Len() int { return b.n }

// Set sets bit i.
func (b *Bitset) Set(i int) { b.words[i>>6] |= 1 << (uint(i) & 63) }

// Clear clears bit i.
func (b *Bitset) Clear(i int) { b.words[i>>6] &^= 1 << (uint(i) & 63) }

// Test reports whether bit i is set. Out-of-range bits read as false,
// which lets a filter bitmap built over a snapshot be consulted safely
// while the collection grows.
func (b *Bitset) Test(i int) bool {
	if i < 0 || i >= b.n {
		return false
	}
	return b.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Count returns the number of set bits.
func (b *Bitset) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// SetAll sets every bit in [0, Len).
func (b *Bitset) SetAll() {
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	b.trimTail()
}

// ClearAll clears every bit.
func (b *Bitset) ClearAll() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// And intersects other into b. Both must have equal capacity.
func (b *Bitset) And(other *Bitset) {
	for i := range b.words {
		b.words[i] &= other.words[i]
	}
}

// Or unions other into b. Both must have equal capacity.
func (b *Bitset) Or(other *Bitset) {
	for i := range b.words {
		b.words[i] |= other.words[i]
	}
}

// AndNot removes other's bits from b.
func (b *Bitset) AndNot(other *Bitset) {
	for i := range b.words {
		b.words[i] &^= other.words[i]
	}
}

// Not complements b in place.
func (b *Bitset) Not() {
	for i := range b.words {
		b.words[i] = ^b.words[i]
	}
	b.trimTail()
}

// Clone returns a copy of b.
func (b *Bitset) Clone() *Bitset {
	c := &Bitset{words: make([]uint64, len(b.words)), n: b.n}
	copy(c.words, b.words)
	return c
}

// ForEach calls fn for every set bit in ascending order; returning
// false stops the iteration early.
func (b *Bitset) ForEach(fn func(i int) bool) {
	for wi, w := range b.words {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			if !fn(wi*64 + bit) {
				return
			}
			w &= w - 1
		}
	}
}

// NextSet returns the smallest set bit >= i, or -1 if none.
func (b *Bitset) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= b.n {
		return -1
	}
	wi := i >> 6
	w := b.words[wi] >> (uint(i) & 63)
	if w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(b.words); wi++ {
		if b.words[wi] != 0 {
			return wi*64 + bits.TrailingZeros64(b.words[wi])
		}
	}
	return -1
}

// trimTail clears bits beyond n in the final word so Count stays exact.
func (b *Bitset) trimTail() {
	if rem := b.n & 63; rem != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] &= (1 << uint(rem)) - 1
	}
}
