package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetTestClear(t *testing.T) {
	b := New(130)
	for _, i := range []int{0, 63, 64, 65, 129} {
		if b.Test(i) {
			t.Fatalf("bit %d set in fresh bitset", i)
		}
		b.Set(i)
		if !b.Test(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if got := b.Count(); got != 5 {
		t.Fatalf("Count = %d, want 5", got)
	}
	b.Clear(64)
	if b.Test(64) || b.Count() != 4 {
		t.Fatalf("Clear failed: test=%v count=%d", b.Test(64), b.Count())
	}
}

func TestOutOfRangeReadsFalse(t *testing.T) {
	b := New(10)
	if b.Test(-1) || b.Test(10) || b.Test(1000) {
		t.Fatal("out-of-range Test must be false")
	}
}

func TestSetAllNotAndTail(t *testing.T) {
	b := New(70) // non-multiple of 64 exercises tail trimming
	b.SetAll()
	if b.Count() != 70 {
		t.Fatalf("SetAll count = %d", b.Count())
	}
	b.Not()
	if b.Count() != 0 {
		t.Fatalf("Not after SetAll count = %d", b.Count())
	}
	b.Not()
	if b.Count() != 70 {
		t.Fatalf("double Not count = %d", b.Count())
	}
	b.ClearAll()
	if b.Count() != 0 {
		t.Fatal("ClearAll failed")
	}
}

func TestBooleanOps(t *testing.T) {
	a := New(128)
	b := New(128)
	a.Set(1)
	a.Set(100)
	b.Set(100)
	b.Set(101)

	and := a.Clone()
	and.And(b)
	if and.Count() != 1 || !and.Test(100) {
		t.Fatalf("And wrong: %d", and.Count())
	}
	or := a.Clone()
	or.Or(b)
	if or.Count() != 3 {
		t.Fatalf("Or wrong: %d", or.Count())
	}
	diff := a.Clone()
	diff.AndNot(b)
	if diff.Count() != 1 || !diff.Test(1) {
		t.Fatalf("AndNot wrong: %d", diff.Count())
	}
}

func TestForEachAndNextSet(t *testing.T) {
	b := New(200)
	want := []int{3, 64, 65, 199}
	for _, i := range want {
		b.Set(i)
	}
	var got []int
	b.ForEach(func(i int) bool {
		got = append(got, i)
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach order: %v", got)
		}
	}
	// Early stop.
	n := 0
	b.ForEach(func(int) bool { n++; return n < 2 })
	if n != 2 {
		t.Fatalf("early stop visited %d", n)
	}
	if b.NextSet(0) != 3 || b.NextSet(4) != 64 || b.NextSet(65) != 65 || b.NextSet(66) != 199 {
		t.Fatal("NextSet wrong")
	}
	if b.NextSet(200) != -1 || b.NextSet(-5) != 3 {
		t.Fatal("NextSet boundary wrong")
	}
	empty := New(64)
	if empty.NextSet(0) != -1 {
		t.Fatal("NextSet on empty should be -1")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New(64)
	a.Set(5)
	c := a.Clone()
	c.Set(6)
	if a.Test(6) {
		t.Fatal("Clone aliases storage")
	}
}

// Property: Count equals the number of distinct set indices, and
// De Morgan holds: ^(a | b) == ^a & ^b.
func TestBitsetProperties(t *testing.T) {
	f := func(seed int64, nBits uint16) bool {
		n := int(nBits%500) + 1
		rng := rand.New(rand.NewSource(seed))
		a := New(n)
		b := New(n)
		seen := map[int]bool{}
		for i := 0; i < n/2; i++ {
			x := rng.Intn(n)
			a.Set(x)
			seen[x] = true
			b.Set(rng.Intn(n))
		}
		if a.Count() != len(seen) {
			return false
		}
		lhs := a.Clone()
		lhs.Or(b)
		lhs.Not()
		rhs := a.Clone()
		rhs.Not()
		nb := b.Clone()
		nb.Not()
		rhs.And(nb)
		for i := 0; i < n; i++ {
			if lhs.Test(i) != rhs.Test(i) {
				return false
			}
		}
		return lhs.Count() == rhs.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
