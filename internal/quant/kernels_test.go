package quant

import (
	"math"
	"math/rand"
	"testing"
)

func kernelData(n, d int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	data := make([]float32, n*d)
	for i := range data {
		data[i] = rng.Float32()*2 - 1
	}
	return data
}

// TestPQScorerMatchesADCTable: the kernel is a packaging of the ADC
// scan, so per-row scores must match the table applied to that row's
// code — exactly on the plain path, within the FastTable quantization
// bound on the packed 4-bit path.
func TestPQScorerMatchesADCTable(t *testing.T) {
	const n, d = 120, 8
	data := kernelData(n, d, 3)
	for _, ks := range []int{16, 32} { // fast path and plain path
		pq, err := TrainPQ(data, n, d, PQConfig{M: 4, Ks: ks, Seed: 1, MaxIter: 10})
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewPQScorer(pq, data, n)
		if err != nil {
			t.Fatal(err)
		}
		if s.Metric().String() != "l2" {
			t.Fatalf("ADC kernel must report l2, got %v", s.Metric())
		}
		wantBytes := pq.M
		if ks <= 16 {
			wantBytes = (pq.M + 1) / 2
		}
		if s.BytesPerRow() != wantBytes {
			t.Fatalf("ks=%d BytesPerRow = %d, want %d", ks, s.BytesPerRow(), wantBytes)
		}
		q := data[:d]
		tab := pq.ADC(q)
		code := make([]byte, pq.M)
		b := s.Bind(q)
		tol := 0.0
		if ks <= 16 {
			ft, err := tab.Quantize()
			if err != nil {
				t.Fatal(err)
			}
			tol = float64(ft.Scale) * float64(pq.M) / 2
		}
		blk := make([]float32, n)
		b.ScoreBlock(0, n, blk)
		for i := 0; i < n; i++ {
			pq.Encode(data[i*d:(i+1)*d], code)
			want := tab.Distance(code)
			got := b.ScoreAt(i)
			if math.Abs(float64(got-want)) > tol {
				t.Fatalf("ks=%d row %d: kernel %v, ADC table %v (tol %v)", ks, i, got, want, tol)
			}
			if blk[i] != got {
				t.Fatalf("ks=%d row %d: ScoreBlock %v != ScoreAt %v", ks, i, blk[i], got)
			}
		}
		ids := []int32{5, 0, int32(n - 1)}
		out := make([]float32, len(ids))
		b.ScoreIDs(ids, out)
		for i, id := range ids {
			if out[i] != b.ScoreAt(int(id)) {
				t.Fatalf("ScoreIDs[%d] = %v, ScoreAt(%d) = %v", i, out[i], id, b.ScoreAt(int(id)))
			}
		}
	}
}

// TestOPQScorerMatchesRotatedADC: the OPQ kernel must equal the plain
// PQ kernel applied to rotated rows and the rotated query — rotation
// preserves L2, the codes just fit better.
func TestOPQScorerMatchesRotatedADC(t *testing.T) {
	const n, d = 100, 8
	data := kernelData(n, d, 9)
	o, err := TrainOPQ(data, n, d, OPQConfig{PQConfig: PQConfig{M: 4, Ks: 16, Seed: 1, MaxIter: 8}, Iters: 3})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewOPQScorer(o, data, n)
	if err != nil {
		t.Fatal(err)
	}
	rotated := make([]float32, len(data))
	rotateAll(o.R, data, rotated, n, d)
	ref, err := NewPQScorer(o.PQ, rotated, n)
	if err != nil {
		t.Fatal(err)
	}
	q := data[d : 2*d]
	b, rb := s.Bind(q), ref.Bind(o.Rotate(q))
	for i := 0; i < n; i++ {
		if got, want := b.ScoreAt(i), rb.ScoreAt(i); got != want {
			t.Fatalf("row %d: OPQ kernel %v, rotated-PQ kernel %v", i, got, want)
		}
	}
}

func TestPQScorerRejectsBadShape(t *testing.T) {
	const n, d = 40, 8
	data := kernelData(n, d, 4)
	pq, err := TrainPQ(data, n, d, PQConfig{M: 4, Ks: 16, Seed: 1, MaxIter: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPQScorer(pq, data[:n*d-1], n); err == nil {
		t.Fatal("short data; want error")
	}
}
