package quant

import (
	"fmt"

	"vdbms/internal/vec"
)

// PQScorer adapts product-quantized codes to the vec.QuantScorer
// contract so ADC table scans plug into the same gather-block call
// sites as float32 and SQ8 kernels. Bind builds the per-query M×Ks
// squared-L2 table once; when Ks ≤ 16 the codes are stored 4-bit
// packed and every Bind additionally quantizes the table into the
// pair-fused uint16 FastTable, so the per-row cost drops to one
// 256-entry lookup per code *byte* (two subquantizers at a time).
//
// PQ/OPQ tables decompose squared L2 only, so the kernel reports and
// supports vec.L2 exclusively; IP/cosine callers must keep
// full-precision scoring or use the SQ8 kernel.
type PQScorer struct {
	pq   *PQ
	opq  *OPQ // non-nil when queries need rotating first
	n    int
	fast bool
	// codes holds M bytes per row, or (M+1)/2 bytes per row packed
	// when fast.
	codes []byte
}

// NewPQScorer trains nothing: it encodes the n row-major vectors with
// an already-trained pq and retains only the codes.
func NewPQScorer(pq *PQ, data []float32, n int) (*PQScorer, error) {
	if len(data) != n*pq.Dim {
		return nil, fmt.Errorf("quant: PQ kernel data holds %d floats, want %d", len(data), n*pq.Dim)
	}
	s := &PQScorer{pq: pq, n: n, fast: pq.Ks <= 16}
	unpacked := make([]byte, n*pq.M)
	for i := 0; i < n; i++ {
		pq.Encode(data[i*pq.Dim:(i+1)*pq.Dim], unpacked[i*pq.M:(i+1)*pq.M])
	}
	if s.fast {
		packed, err := pq.PackCodes4(unpacked, n)
		if err != nil {
			return nil, err
		}
		s.codes = packed
	} else {
		s.codes = unpacked
	}
	return s, nil
}

// NewOPQScorer rotates the rows with the learned OPQ rotation, encodes
// them with the inner PQ, and rotates every query at Bind time.
func NewOPQScorer(o *OPQ, data []float32, n int) (*PQScorer, error) {
	d := o.PQ.Dim
	if len(data) != n*d {
		return nil, fmt.Errorf("quant: OPQ kernel data holds %d floats, want %d", len(data), n*d)
	}
	rotated := make([]float32, len(data))
	rotateAll(o.R, data, rotated, n, d)
	s, err := NewPQScorer(o.PQ, rotated, n)
	if err != nil {
		return nil, err
	}
	s.opq = o
	return s, nil
}

// Metric implements vec.QuantScorer: ADC tables approximate squared L2.
func (s *PQScorer) Metric() vec.Metric { return vec.L2 }

// Rows implements vec.QuantScorer.
func (s *PQScorer) Rows() int { return s.n }

// Dim implements vec.QuantScorer.
func (s *PQScorer) Dim() int { return s.pq.Dim }

// BytesPerRow implements vec.QuantScorer: the stored code width.
func (s *PQScorer) BytesPerRow() int {
	if s.fast {
		return (s.pq.M + 1) / 2
	}
	return s.pq.M
}

// Bind implements vec.QuantScorer.
func (s *PQScorer) Bind(q []float32) vec.QuantBound {
	if s.opq != nil {
		q = s.opq.Rotate(q)
	}
	tab := s.pq.ADC(q)
	b := &pqBound{s: s, tab: tab}
	if s.fast {
		// Quantize only fails for Ks > 16, excluded at construction.
		b.ft, _ = tab.Quantize()
	}
	return b
}

type pqBound struct {
	s   *PQScorer
	tab *ADCTable
	ft  *FastTable // fast path only
}

// ScoreAt implements vec.QuantBound.
func (b *pqBound) ScoreAt(id int) float32 {
	if ft := b.ft; ft != nil {
		bytesPer := (ft.M + 1) / 2
		code := b.s.codes[id*bytesPer : (id+1)*bytesPer]
		var acc uint32
		for j, by := range code {
			acc += uint32(ft.Pairs[j][by])
		}
		return ft.Bias + ft.Scale*float32(acc)
	}
	m := b.tab.M
	return b.tab.Distance(b.s.codes[id*m : (id+1)*m])
}

// ScoreBlock implements vec.QuantBound.
func (b *pqBound) ScoreBlock(lo, hi int, out []float32) {
	out = out[:hi-lo]
	if ft := b.ft; ft != nil {
		bytesPer := (ft.M + 1) / 2
		ft.DistanceBatch4(b.s.codes[lo*bytesPer:hi*bytesPer], out)
		return
	}
	m := b.tab.M
	b.tab.DistanceBatch(b.s.codes[lo*m:hi*m], out)
}

// ScoreIDs implements vec.QuantBound.
func (b *pqBound) ScoreIDs(ids []int32, out []float32) {
	for i, id := range ids {
		out[i] = b.ScoreAt(int(id))
	}
}
