package quant

import (
	"fmt"

	"vdbms/internal/kmeans"
	"vdbms/internal/vec"
)

// PQ is a product quantizer (Jégou et al.): the d-dimensional space is
// split into M contiguous subspaces of d/M dimensions, each quantized
// by its own Ks-centroid codebook. A vector is encoded as M sub-codes,
// compressing float32 storage by a factor of 4*d / (M * log2(Ks)/8).
type PQ struct {
	Dim  int
	M    int // number of subquantizers
	Ks   int // centroids per subquantizer (power of two, <= 256)
	Dsub int // Dim / M
	// Codebooks[m] is row-major Ks x Dsub.
	Codebooks [][]float32
}

// PQConfig controls TrainPQ.
type PQConfig struct {
	M       int   // subquantizers; must divide the dimension
	Ks      int   // centroids per subquantizer; default 256
	MaxIter int   // k-means iterations; default 25
	Seed    int64 // RNG seed; default 1
}

// TrainPQ learns codebooks from n row-major training vectors.
func TrainPQ(data []float32, n, d int, cfg PQConfig) (*PQ, error) {
	if cfg.Ks == 0 {
		cfg.Ks = 256
	}
	if cfg.M <= 0 || d%cfg.M != 0 {
		return nil, fmt.Errorf("quant: M=%d must divide dim %d", cfg.M, d)
	}
	if !isPow2(cfg.Ks) || cfg.Ks > 256 {
		return nil, fmt.Errorf("quant: Ks=%d must be a power of two <= 256", cfg.Ks)
	}
	if n == 0 || len(data) != n*d {
		return nil, fmt.Errorf("quant: bad PQ training shape n=%d d=%d len=%d", n, d, len(data))
	}
	pq := &PQ{Dim: d, M: cfg.M, Ks: cfg.Ks, Dsub: d / cfg.M}
	pq.Codebooks = make([][]float32, cfg.M)
	sub := make([]float32, n*pq.Dsub)
	for m := 0; m < cfg.M; m++ {
		for i := 0; i < n; i++ {
			copy(sub[i*pq.Dsub:(i+1)*pq.Dsub], data[i*d+m*pq.Dsub:i*d+(m+1)*pq.Dsub])
		}
		res, err := kmeans.Train(sub, n, pq.Dsub, kmeans.Config{
			K: cfg.Ks, MaxIter: cfg.MaxIter, Seed: cfg.Seed + int64(m),
		})
		if err != nil {
			return nil, fmt.Errorf("quant: subquantizer %d: %w", m, err)
		}
		// If n < Ks the trainer clamps K; pad by repeating the last
		// centroid so codes stay in range.
		cb := make([]float32, cfg.Ks*pq.Dsub)
		copy(cb, res.Centroids)
		for c := res.K; c < cfg.Ks; c++ {
			copy(cb[c*pq.Dsub:(c+1)*pq.Dsub], cb[(res.K-1)*pq.Dsub:res.K*pq.Dsub])
		}
		pq.Codebooks[m] = cb
	}
	return pq, nil
}

// CodeSize returns the encoded size in bytes of one vector.
func (pq *PQ) CodeSize() int {
	if pq.Ks <= 16 {
		return (pq.M + 1) / 2 // 4-bit codes packed two per byte
	}
	return pq.M
}

// CompressionRatio returns the size reduction versus float32 storage.
func (pq *PQ) CompressionRatio() float64 {
	return float64(pq.Dim*4) / float64(pq.CodeSize())
}

// Encode maps v to its code (one byte per subquantizer; for Ks <= 16
// use PackCodes4 afterwards for the packed representation).
func (pq *PQ) Encode(v []float32, code []byte) []byte {
	if cap(code) < pq.M {
		code = make([]byte, pq.M)
	}
	code = code[:pq.M]
	for m := 0; m < pq.M; m++ {
		sub := v[m*pq.Dsub : (m+1)*pq.Dsub]
		cb := pq.Codebooks[m]
		best, bestD := 0, float32(0)
		for c := 0; c < pq.Ks; c++ {
			d := vec.SquaredL2(sub, cb[c*pq.Dsub:(c+1)*pq.Dsub])
			if c == 0 || d < bestD {
				best, bestD = c, d
			}
		}
		code[m] = byte(best)
	}
	return code
}

// Decode reconstructs the approximation encoded by code.
func (pq *PQ) Decode(code []byte, dst []float32) []float32 {
	if cap(dst) < pq.Dim {
		dst = make([]float32, pq.Dim)
	}
	dst = dst[:pq.Dim]
	for m := 0; m < pq.M; m++ {
		cb := pq.Codebooks[m]
		c := int(code[m])
		copy(dst[m*pq.Dsub:(m+1)*pq.Dsub], cb[c*pq.Dsub:(c+1)*pq.Dsub])
	}
	return dst
}

// ADCTable holds per-query lookup tables for asymmetric distance
// computation: Tab[m*Ks+c] = ||q_m - codebook_m[c]||^2. Summing one
// entry per subquantizer yields the (approximate) squared L2 distance
// from the raw query to an encoded vector.
type ADCTable struct {
	M, Ks int
	Tab   []float32
}

// ADC builds the asymmetric distance table for query q.
func (pq *PQ) ADC(q []float32) *ADCTable {
	t := &ADCTable{M: pq.M, Ks: pq.Ks, Tab: make([]float32, pq.M*pq.Ks)}
	for m := 0; m < pq.M; m++ {
		sub := q[m*pq.Dsub : (m+1)*pq.Dsub]
		cb := pq.Codebooks[m]
		row := t.Tab[m*pq.Ks : (m+1)*pq.Ks]
		for c := 0; c < pq.Ks; c++ {
			row[c] = vec.SquaredL2(sub, cb[c*pq.Dsub:(c+1)*pq.Dsub])
		}
	}
	return t
}

// Distance evaluates the table against one code.
func (t *ADCTable) Distance(code []byte) float32 {
	var s float32
	for m, c := range code {
		s += t.Tab[m*t.Ks+int(c)]
	}
	return s
}

// DistanceBatch scans a packed code matrix (M bytes per vector) and
// writes distances into out.
func (t *ADCTable) DistanceBatch(codes []byte, out []float32) {
	m := t.M
	for i := range out {
		out[i] = t.Distance(codes[i*m : (i+1)*m])
	}
}

// SDCTable holds symmetric distance tables: Tab[m][a][b] approximates
// the squared distance contribution when the query itself is encoded.
// SDC avoids the per-query table-building cost of ADC at the price of
// an extra quantization error on the query side; E4's variant measures
// that recall gap.
type SDCTable struct {
	M, Ks int
	Tab   []float32 // M * Ks * Ks
}

// SDC precomputes centroid-to-centroid tables; it is query independent
// and built once per codebook.
func (pq *PQ) SDC() *SDCTable {
	t := &SDCTable{M: pq.M, Ks: pq.Ks, Tab: make([]float32, pq.M*pq.Ks*pq.Ks)}
	for m := 0; m < pq.M; m++ {
		cb := pq.Codebooks[m]
		base := m * pq.Ks * pq.Ks
		for a := 0; a < pq.Ks; a++ {
			va := cb[a*pq.Dsub : (a+1)*pq.Dsub]
			for b := a; b < pq.Ks; b++ {
				d := vec.SquaredL2(va, cb[b*pq.Dsub:(b+1)*pq.Dsub])
				t.Tab[base+a*pq.Ks+b] = d
				t.Tab[base+b*pq.Ks+a] = d
			}
		}
	}
	return t
}

// Distance evaluates the symmetric distance between two codes.
func (t *SDCTable) Distance(qcode, code []byte) float32 {
	var s float32
	for m := range qcode {
		s += t.Tab[m*t.Ks*t.Ks+int(qcode[m])*t.Ks+int(code[m])]
	}
	return s
}

// MSE reports mean squared reconstruction error over n vectors.
func (pq *PQ) MSE(data []float32, n int) float64 {
	var s float64
	code := make([]byte, pq.M)
	rec := make([]float32, pq.Dim)
	for i := 0; i < n; i++ {
		row := data[i*pq.Dim : (i+1)*pq.Dim]
		code = pq.Encode(row, code)
		rec = pq.Decode(code, rec)
		for j := range row {
			d := float64(row[j] - rec[j])
			s += d * d
		}
	}
	return s / float64(n*pq.Dim)
}
