// Package quant implements the vector-compression layer of Section
// 2.2(3): scalar quantization (SQ), product quantization (PQ) with
// asymmetric and symmetric distance computation, optimized product
// quantization (OPQ) via alternating rotation learning, and a
// register-blocked 4-bit PQ scan that stands in for the SIMD-shuffle
// fast scan of Quick(er) ADC (Section 2.3(1)).
package quant

import "fmt"

// SQ is a per-dimension 8-bit scalar quantizer: each float32 dimension
// is mapped to a uint8 by min/max scaling, a 4x compression ("every
// 64-bit dimension is reduced" idea of the paper's SQ index, applied
// to float32 at 8 bits).
type SQ struct {
	Dim  int
	Min  []float32 // per-dimension minimum
	Step []float32 // per-dimension (max-min)/255, 0 for constant dims
}

// TrainSQ learns per-dimension ranges from n row-major vectors.
func TrainSQ(data []float32, n, d int) (*SQ, error) {
	if n == 0 || d == 0 || len(data) != n*d {
		return nil, fmt.Errorf("quant: bad SQ training shape n=%d d=%d len=%d", n, d, len(data))
	}
	minv := make([]float32, d)
	maxv := make([]float32, d)
	copy(minv, data[:d])
	copy(maxv, data[:d])
	for i := 1; i < n; i++ {
		row := data[i*d : (i+1)*d]
		for j, x := range row {
			if x < minv[j] {
				minv[j] = x
			}
			if x > maxv[j] {
				maxv[j] = x
			}
		}
	}
	step := make([]float32, d)
	for j := range step {
		step[j] = (maxv[j] - minv[j]) / 255
	}
	return &SQ{Dim: d, Min: minv, Step: step}, nil
}

// Encode quantizes v into code (allocated if nil). v must have
// exactly Dim dimensions: an over-length vector used to panic with
// index-out-of-range mid-encode and a short one silently produced a
// zero-padded code that under-scored every comparison.
func (q *SQ) Encode(v []float32, code []byte) ([]byte, error) {
	if len(v) != q.Dim {
		return nil, fmt.Errorf("quant: SQ.Encode vector has %d dims, quantizer has %d", len(v), q.Dim)
	}
	if cap(code) < q.Dim {
		code = make([]byte, q.Dim)
	}
	code = code[:q.Dim]
	for j, x := range v {
		if q.Step[j] == 0 {
			code[j] = 0
			continue
		}
		t := (x - q.Min[j]) / q.Step[j]
		if t < 0 {
			t = 0
		} else if t > 255 {
			t = 255
		}
		code[j] = byte(t + 0.5)
	}
	return code, nil
}

// Decode reconstructs an approximation of the original vector. code
// must hold exactly Dim bytes.
func (q *SQ) Decode(code []byte, dst []float32) ([]float32, error) {
	if len(code) != q.Dim {
		return nil, fmt.Errorf("quant: SQ.Decode code has %d bytes, quantizer has %d dims", len(code), q.Dim)
	}
	if cap(dst) < q.Dim {
		dst = make([]float32, q.Dim)
	}
	dst = dst[:q.Dim]
	for j, c := range code {
		dst[j] = q.Min[j] + float32(c)*q.Step[j]
	}
	return dst, nil
}

// DistanceL2 computes the squared L2 distance between a raw query and
// a code without materializing the decoded vector. Both operands must
// match the quantizer's Dim: a short query used to panic and a short
// code silently dropped dimensions from the sum.
func (q *SQ) DistanceL2(query []float32, code []byte) (float32, error) {
	if len(query) != q.Dim || len(code) != q.Dim {
		return 0, fmt.Errorf("quant: SQ.DistanceL2 query %d dims, code %d bytes, quantizer %d dims",
			len(query), len(code), q.Dim)
	}
	var s float32
	for j, c := range code {
		d := query[j] - (q.Min[j] + float32(c)*q.Step[j])
		s += d * d
	}
	return s, nil
}

// CompressionRatio returns the size reduction versus float32 storage.
func (q *SQ) CompressionRatio() float64 { return 4 }

// MSE reports the mean squared reconstruction error over n row-major
// vectors — the code-design quality measure quantization papers report.
func (q *SQ) MSE(data []float32, n int) float64 {
	var s float64
	code := make([]byte, q.Dim)
	rec := make([]float32, q.Dim)
	for i := 0; i < n; i++ {
		row := data[i*q.Dim : (i+1)*q.Dim]
		code, _ = q.Encode(row, code)
		rec, _ = q.Decode(code, rec)
		for j := range row {
			d := float64(row[j] - rec[j])
			s += d * d
		}
	}
	return s / float64(n*q.Dim)
}

// isPow2 reports whether k is a power of two (used to validate PQ
// codebook sizes).
func isPow2(k int) bool { return k > 0 && k&(k-1) == 0 }
