package quant

import (
	"fmt"
	"math/rand"

	"vdbms/internal/matrix"
)

// OPQ is optimized product quantization (Ge et al.): an orthonormal
// rotation R is learned jointly with the PQ codebooks so that the
// rotated space distributes variance evenly across subspaces,
// reducing quantization error versus plain PQ on correlated data.
type OPQ struct {
	PQ *PQ
	R  *matrix.Dense // d x d rotation applied as y = R x
}

// OPQConfig controls TrainOPQ.
type OPQConfig struct {
	PQConfig
	// Iters is the number of alternating optimization rounds
	// (rotate -> retrain codebooks -> re-solve rotation); default 8.
	Iters int
}

// TrainOPQ learns a rotation and codebooks via the non-parametric OPQ
// alternation: starting from a random orthonormal R, it repeatedly
// (1) rotates the data, (2) trains/encodes a PQ in rotated space, and
// (3) solves the orthogonal Procrustes problem aligning the data to
// its quantized reconstruction.
func TrainOPQ(data []float32, n, d int, cfg OPQConfig) (*OPQ, error) {
	if cfg.Iters <= 0 {
		cfg.Iters = 8
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))
	r := matrix.RandomOrthonormal(d, rng)

	rotated := make([]float32, n*d)
	var pq *PQ
	var err error
	for iter := 0; iter < cfg.Iters; iter++ {
		rotateAll(r, data, rotated, n, d)
		pq, err = TrainPQ(rotated, n, d, cfg.PQConfig)
		if err != nil {
			return nil, fmt.Errorf("quant: OPQ iteration %d: %w", iter, err)
		}
		if iter == cfg.Iters-1 {
			break
		}
		// Build C = X^T Yhat where X holds the raw data rows and Yhat
		// the quantized reconstructions in rotated space. Procrustes(C)
		// yields the orthogonal R minimizing ||Yhat - X R^T||_F, i.e.
		// the rotation (applied as y = R x per vector) under which the
		// current codebooks reconstruct the data best.
		c := matrix.NewDense(d, d)
		code := make([]byte, pq.M)
		rec := make([]float32, d)
		for i := 0; i < n; i++ {
			row := rotated[i*d : (i+1)*d]
			code = pq.Encode(row, code)
			rec = pq.Decode(code, rec)
			raw := data[i*d : (i+1)*d]
			for a := 0; a < d; a++ {
				ca := c.Row(a)
				xa := float64(raw[a])
				if xa == 0 {
					continue
				}
				for b := 0; b < d; b++ {
					ca[b] += xa * float64(rec[b])
				}
			}
		}
		r = matrix.Procrustes(c)
	}
	return &OPQ{PQ: pq, R: r}, nil
}

func rotateAll(r *matrix.Dense, src, dst []float32, n, d int) {
	for i := 0; i < n; i++ {
		out := r.MulVec32(src[i*d : (i+1)*d])
		copy(dst[i*d:(i+1)*d], out)
	}
}

// Rotate applies the learned rotation to a vector.
func (o *OPQ) Rotate(v []float32) []float32 { return o.R.MulVec32(v) }

// Encode rotates and product-quantizes v.
func (o *OPQ) Encode(v []float32, code []byte) []byte {
	return o.PQ.Encode(o.Rotate(v), code)
}

// ADC builds an asymmetric distance table for a raw (unrotated) query.
// Distances computed against OPQ codes approximate original-space L2
// because the rotation is orthonormal (distance preserving).
func (o *OPQ) ADC(q []float32) *ADCTable { return o.PQ.ADC(o.Rotate(q)) }

// MSE reports mean squared reconstruction error in the original space
// (identical to rotated-space error since R is orthonormal).
func (o *OPQ) MSE(data []float32, n int) float64 {
	d := o.PQ.Dim
	var s float64
	code := make([]byte, o.PQ.M)
	rec := make([]float32, d)
	for i := 0; i < n; i++ {
		rot := o.Rotate(data[i*d : (i+1)*d])
		code = o.PQ.Encode(rot, code)
		rec = o.PQ.Decode(code, rec)
		for j := range rot {
			dd := float64(rot[j] - rec[j])
			s += dd * dd
		}
	}
	return s / float64(n*d)
}
