package quant

import (
	"math"
	"testing"

	"vdbms/internal/dataset"
	"vdbms/internal/vec"
)

func TestSQRoundTrip(t *testing.T) {
	ds := dataset.Clustered(200, 8, 3, 0.5, 1)
	sq, err := TrainSQ(ds.Data, ds.Count, ds.Dim)
	if err != nil {
		t.Fatal(err)
	}
	code, err := sq.Encode(ds.Row(0), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(code) != 8 {
		t.Fatalf("code len %d", len(code))
	}
	rec, err := sq.Decode(code, nil)
	if err != nil {
		t.Fatal(err)
	}
	for j := range rec {
		// 8-bit quantization error is at most one step.
		if math.Abs(float64(rec[j]-ds.Row(0)[j])) > float64(sq.Step[j])+1e-6 {
			t.Fatalf("dim %d: rec %v orig %v step %v", j, rec[j], ds.Row(0)[j], sq.Step[j])
		}
	}
	if sq.CompressionRatio() != 4 {
		t.Fatal("SQ8 compresses 4x")
	}
}

func TestSQClampsOutOfRange(t *testing.T) {
	sq, err := TrainSQ([]float32{0, 0, 1, 1}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	code, err := sq.Encode([]float32{-5, 9}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if code[0] != 0 || code[1] != 255 {
		t.Fatalf("clamp failed: %v", code)
	}
}

func TestSQConstantDimension(t *testing.T) {
	sq, err := TrainSQ([]float32{3, 1, 3, 2}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	code, err := sq.Encode([]float32{3, 1.5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := sq.Decode(code, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rec[0] != 3 {
		t.Fatalf("constant dim should reconstruct exactly: %v", rec[0])
	}
}

func TestSQDistanceMatchesDecode(t *testing.T) {
	ds := dataset.Uniform(50, 6, 2)
	sq, _ := TrainSQ(ds.Data, 50, 6)
	q := ds.Row(10)
	code, err := sq.Encode(ds.Row(20), nil)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := sq.Decode(code, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := vec.SquaredL2(q, dec)
	got, err := sq.DistanceL2(q, code)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(got-want)) > 1e-4 {
		t.Fatalf("DistanceL2 %v vs decode %v", got, want)
	}
}

func TestSQTrainErrors(t *testing.T) {
	if _, err := TrainSQ(nil, 0, 2); err == nil {
		t.Fatal("want error for empty data")
	}
	if _, err := TrainSQ([]float32{1, 2, 3}, 2, 2); err == nil {
		t.Fatal("want error for bad shape")
	}
}

func TestPQEncodeDecode(t *testing.T) {
	ds := dataset.Clustered(400, 16, 4, 0.3, 3)
	pq, err := TrainPQ(ds.Data, ds.Count, ds.Dim, PQConfig{M: 4, Ks: 32, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if pq.Dsub != 4 || pq.CodeSize() != 4 {
		t.Fatalf("Dsub=%d CodeSize=%d", pq.Dsub, pq.CodeSize())
	}
	if pq.CompressionRatio() != 16 {
		t.Fatalf("compression = %v", pq.CompressionRatio())
	}
	code := pq.Encode(ds.Row(0), nil)
	rec := pq.Decode(code, nil)
	// Reconstruction should be closer to the original than a random
	// other row is, for clustered data.
	if vec.SquaredL2(rec, ds.Row(0)) >= vec.SquaredL2(ds.Row(0), ds.Row(399)) {
		t.Fatal("PQ reconstruction no better than a random point")
	}
}

func TestPQTrainValidation(t *testing.T) {
	data := make([]float32, 10*8)
	if _, err := TrainPQ(data, 10, 8, PQConfig{M: 3}); err == nil {
		t.Fatal("M must divide d")
	}
	if _, err := TrainPQ(data, 10, 8, PQConfig{M: 2, Ks: 100}); err == nil {
		t.Fatal("Ks must be a power of two")
	}
	if _, err := TrainPQ(data, 10, 8, PQConfig{M: 2, Ks: 512}); err == nil {
		t.Fatal("Ks must be <= 256")
	}
	if _, err := TrainPQ(data[:1], 10, 8, PQConfig{M: 2}); err == nil {
		t.Fatal("bad shape must error")
	}
}

func TestPQSmallTrainingSetPadsCodebook(t *testing.T) {
	// n < Ks: codebook must still have Ks rows and codes stay valid.
	ds := dataset.Uniform(10, 4, 7)
	pq, err := TrainPQ(ds.Data, 10, 4, PQConfig{M: 2, Ks: 16, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	code := pq.Encode(ds.Row(3), nil)
	for _, c := range code {
		if int(c) >= pq.Ks {
			t.Fatalf("code %d out of range", c)
		}
	}
}

func TestADCApproximatesDecodedDistance(t *testing.T) {
	ds := dataset.Clustered(500, 16, 4, 0.3, 11)
	pq, err := TrainPQ(ds.Data, ds.Count, ds.Dim, PQConfig{M: 4, Ks: 64, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	q := ds.Row(42)
	tab := pq.ADC(q)
	for i := 0; i < 20; i++ {
		code := pq.Encode(ds.Row(i), nil)
		want := vec.SquaredL2(q, pq.Decode(code, nil))
		got := tab.Distance(code)
		if math.Abs(float64(got-want)) > 1e-3*(1+float64(want)) {
			t.Fatalf("row %d: ADC %v decoded %v", i, got, want)
		}
	}
}

func TestADCDistanceBatch(t *testing.T) {
	ds := dataset.Uniform(30, 8, 13)
	pq, _ := TrainPQ(ds.Data, 30, 8, PQConfig{M: 4, Ks: 16, Seed: 1})
	codes := make([]byte, 30*4)
	for i := 0; i < 30; i++ {
		pq.Encode(ds.Row(i), codes[i*4:(i+1)*4])
	}
	tab := pq.ADC(ds.Row(0))
	out := make([]float32, 30)
	tab.DistanceBatch(codes, out)
	for i := 0; i < 30; i++ {
		if out[i] != tab.Distance(codes[i*4:(i+1)*4]) {
			t.Fatalf("batch mismatch at %d", i)
		}
	}
}

func TestSDCSymmetricAndConsistent(t *testing.T) {
	ds := dataset.Clustered(300, 8, 3, 0.4, 17)
	pq, _ := TrainPQ(ds.Data, 300, 8, PQConfig{M: 2, Ks: 16, Seed: 3})
	sdc := pq.SDC()
	a := pq.Encode(ds.Row(1), nil)
	b := pq.Encode(ds.Row(2), nil)
	if sdc.Distance(a, b) != sdc.Distance(b, a) {
		t.Fatal("SDC must be symmetric")
	}
	// SDC(a,b) equals distance between decoded centroids.
	want := vec.SquaredL2(pq.Decode(a, nil), pq.Decode(b, nil))
	if math.Abs(float64(sdc.Distance(a, b)-want)) > 1e-4*(1+float64(want)) {
		t.Fatalf("SDC %v decoded %v", sdc.Distance(a, b), want)
	}
	if sdc.Distance(a, a) != 0 {
		t.Fatal("SDC self distance must be 0")
	}
}

func TestQuantizationErrorOrdering(t *testing.T) {
	// On correlated (low-rank) data: OPQ error <= PQ error, and PQ with
	// more centroids beats fewer. SQ is included for the E4 table.
	ds := dataset.LowRank(600, 16, 3, 0.05, 23)
	pqSmall, err := TrainPQ(ds.Data, ds.Count, ds.Dim, PQConfig{M: 4, Ks: 8, Seed: 5, MaxIter: 15})
	if err != nil {
		t.Fatal(err)
	}
	pqBig, err := TrainPQ(ds.Data, ds.Count, ds.Dim, PQConfig{M: 4, Ks: 64, Seed: 5, MaxIter: 15})
	if err != nil {
		t.Fatal(err)
	}
	if pqBig.MSE(ds.Data, ds.Count) >= pqSmall.MSE(ds.Data, ds.Count) {
		t.Fatal("more centroids should reduce MSE")
	}
	opq, err := TrainOPQ(ds.Data, ds.Count, ds.Dim, OPQConfig{
		PQConfig: PQConfig{M: 4, Ks: 8, Seed: 5, MaxIter: 15}, Iters: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	pqMSE := pqSmall.MSE(ds.Data, ds.Count)
	opqMSE := opq.MSE(ds.Data, ds.Count)
	// Allow a small tolerance: OPQ should not be meaningfully worse.
	if opqMSE > pqMSE*1.05 {
		t.Fatalf("OPQ MSE %v worse than PQ MSE %v", opqMSE, pqMSE)
	}
}

func TestOPQRotationIsOrthonormal(t *testing.T) {
	ds := dataset.Uniform(200, 8, 29)
	opq, err := TrainOPQ(ds.Data, 200, 8, OPQConfig{
		PQConfig: PQConfig{M: 2, Ks: 16, Seed: 1, MaxIter: 10}, Iters: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// R R^T = I -> rotation preserves norms.
	v := ds.Row(5)
	rv := opq.Rotate(v)
	n1, n2 := vec.Norm(v), vec.Norm(rv)
	if math.Abs(float64(n1-n2)) > 1e-3 {
		t.Fatalf("rotation changed norm: %v vs %v", n1, n2)
	}
}

func TestOPQADCMatchesEncode(t *testing.T) {
	ds := dataset.Clustered(300, 8, 3, 0.4, 31)
	opq, err := TrainOPQ(ds.Data, 300, 8, OPQConfig{
		PQConfig: PQConfig{M: 2, Ks: 16, Seed: 1, MaxIter: 10}, Iters: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	q := ds.Row(0)
	tab := opq.ADC(q)
	code := opq.Encode(ds.Row(1), nil)
	want := vec.SquaredL2(opq.Rotate(q), opq.PQ.Decode(code, nil))
	got := tab.Distance(code)
	if math.Abs(float64(got-want)) > 1e-3*(1+float64(want)) {
		t.Fatalf("OPQ ADC %v want %v", got, want)
	}
}

func TestPackCodes4(t *testing.T) {
	pq := &PQ{Dim: 8, M: 4, Ks: 16, Dsub: 2}
	codes := []byte{1, 2, 3, 4, 15, 0, 7, 9}
	packed, err := pq.PackCodes4(codes, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(packed) != 4 {
		t.Fatalf("packed len %d", len(packed))
	}
	if packed[0] != 0x21 || packed[1] != 0x43 || packed[2] != 0x0f || packed[3] != 0x97 {
		t.Fatalf("packed = %x", packed)
	}
	big := &PQ{Dim: 8, M: 4, Ks: 256, Dsub: 2}
	if _, err := big.PackCodes4(codes, 2); err == nil {
		t.Fatal("want error for Ks > 16")
	}
}

func TestPackCodes4OddM(t *testing.T) {
	pq := &PQ{Dim: 6, M: 3, Ks: 16, Dsub: 2}
	packed, err := pq.PackCodes4([]byte{5, 6, 7}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(packed) != 2 || packed[0] != 0x65 || packed[1] != 0x07 {
		t.Fatalf("odd-M packed = %x", packed)
	}
}

func TestFastScanMatchesNaiveWithinQuantization(t *testing.T) {
	ds := dataset.Clustered(400, 16, 4, 0.3, 37)
	pq, err := TrainPQ(ds.Data, ds.Count, ds.Dim, PQConfig{M: 8, Ks: 16, Seed: 5, MaxIter: 15})
	if err != nil {
		t.Fatal(err)
	}
	n := 100
	codes := make([]byte, n*pq.M)
	for i := 0; i < n; i++ {
		pq.Encode(ds.Row(i), codes[i*pq.M:(i+1)*pq.M])
	}
	packed, err := pq.PackCodes4(codes, n)
	if err != nil {
		t.Fatal(err)
	}
	tab := pq.ADC(ds.Row(200))
	ft, err := tab.Quantize()
	if err != nil {
		t.Fatal(err)
	}
	exact := make([]float32, n)
	fast := make([]float32, n)
	tab.DistanceBatch(codes, exact)
	ft.DistanceBatch4(packed, fast)
	// With round-to-nearest LUT entries the max quantization error is
	// M * scale / 2 (half an LSB per subquantizer); before the
	// rounding fix truncation needed the full M * scale budget.
	maxErr := float64(ft.Scale) * float64(pq.M) / 2
	for i := 0; i < n; i++ {
		if math.Abs(float64(fast[i]-exact[i])) > maxErr+1e-4 {
			t.Fatalf("row %d: fast %v exact %v (budget %v)", i, fast[i], exact[i], maxErr)
		}
	}
}

func TestFastScanPreservesRanking(t *testing.T) {
	// The top-1 by fast scan should be near-top by exact ADC. Uniform
	// data keeps the table dynamic range moderate; on widely separated
	// clusters the 8-bit LUT loses fine ranking, which is why
	// production fast-scan implementations re-rank with exact ADC.
	ds := dataset.Uniform(500, 16, 41)
	pq, err := TrainPQ(ds.Data, ds.Count, ds.Dim, PQConfig{M: 8, Ks: 16, Seed: 9, MaxIter: 15})
	if err != nil {
		t.Fatal(err)
	}
	n := ds.Count
	codes := make([]byte, n*pq.M)
	for i := 0; i < n; i++ {
		pq.Encode(ds.Row(i), codes[i*pq.M:(i+1)*pq.M])
	}
	packed, _ := pq.PackCodes4(codes, n)
	q := ds.Queries(1, 0.05, 43)[0]
	tab := pq.ADC(q)
	ft, _ := tab.Quantize()
	exact := make([]float32, n)
	fast := make([]float32, n)
	tab.DistanceBatch(codes, exact)
	ft.DistanceBatch4(packed, fast)
	argmin := func(xs []float32) int {
		best := 0
		for i, x := range xs {
			if x < xs[best] {
				best = i
			}
		}
		return best
	}
	fi := argmin(fast)
	// fast's winner must be within the 5 best exact distances.
	better := 0
	for _, x := range exact {
		if x < exact[fi] {
			better++
		}
	}
	if better > 5 {
		t.Fatalf("fast-scan winner ranked %d by exact ADC", better)
	}
}

func TestQuantizeRejectsWideTables(t *testing.T) {
	tab := &ADCTable{M: 2, Ks: 256, Tab: make([]float32, 512)}
	if _, err := tab.Quantize(); err == nil {
		t.Fatal("want error for Ks > 16")
	}
}

func TestQuantizeConstantTable(t *testing.T) {
	tab := &ADCTable{M: 1, Ks: 16, Tab: make([]float32, 16)} // all zeros
	ft, err := tab.Quantize()
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float32, 1)
	ft.DistanceBatch4([]byte{0x00}, out)
	if out[0] != 0 {
		t.Fatalf("constant table distance = %v", out[0])
	}
}

func TestRQErrorDecreasesPerLevel(t *testing.T) {
	ds := dataset.Clustered(800, 16, 6, 0.5, 51)
	rq, err := TrainRQ(ds.Data, ds.Count, ds.Dim, RQConfig{Levels: 4, Ks: 32, Seed: 3, MaxIter: 12})
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for l := 1; l <= 4; l++ {
		mse := rq.MSEAtLevel(ds.Data, ds.Count, l)
		if mse > prev+1e-9 {
			t.Fatalf("level %d MSE %v exceeds level %d MSE %v", l, mse, l-1, prev)
		}
		prev = mse
	}
	if rq.CodeSize() != 4 || rq.CompressionRatio() != 16 {
		t.Fatalf("code size %d ratio %v", rq.CodeSize(), rq.CompressionRatio())
	}
}

func TestRQEncodeDecodeAndDistance(t *testing.T) {
	ds := dataset.Clustered(500, 8, 4, 0.3, 53)
	rq, err := TrainRQ(ds.Data, ds.Count, ds.Dim, RQConfig{Levels: 3, Ks: 16, Seed: 1, MaxIter: 10})
	if err != nil {
		t.Fatal(err)
	}
	code := rq.Encode(ds.Row(0), nil)
	if len(code) != 3 {
		t.Fatalf("code len %d", len(code))
	}
	rec := rq.Decode(code, nil)
	// Reconstruction closer to the source than to a random other point.
	if vec.SquaredL2(rec, ds.Row(0)) >= vec.SquaredL2(ds.Row(0), ds.Row(499)) {
		t.Fatal("RQ reconstruction no better than a random point")
	}
	q := ds.Row(42)
	want := vec.SquaredL2(q, rec)
	if got := rq.DistanceL2(q, code); got != vec.SquaredL2(q, rq.Decode(code, nil)) || got < 0 {
		t.Fatalf("DistanceL2 = %v, want %v", got, want)
	}
}

func TestRQBeatsSingleLevelKMeans(t *testing.T) {
	// 4 levels of 16 centroids should reconstruct better than 1 level
	// of 16 centroids (the hierarchical refinement claim).
	ds := dataset.Clustered(600, 16, 8, 0.5, 57)
	deep, err := TrainRQ(ds.Data, ds.Count, ds.Dim, RQConfig{Levels: 4, Ks: 16, Seed: 5, MaxIter: 12})
	if err != nil {
		t.Fatal(err)
	}
	shallow, err := TrainRQ(ds.Data, ds.Count, ds.Dim, RQConfig{Levels: 1, Ks: 16, Seed: 5, MaxIter: 12})
	if err != nil {
		t.Fatal(err)
	}
	if deep.MSE(ds.Data, ds.Count) >= shallow.MSE(ds.Data, ds.Count) {
		t.Fatal("deeper RQ must reconstruct better")
	}
}

func TestRQValidation(t *testing.T) {
	if _, err := TrainRQ(nil, 0, 4, RQConfig{}); err == nil {
		t.Fatal("want shape error")
	}
	data := make([]float32, 10*4)
	if _, err := TrainRQ(data, 10, 4, RQConfig{Ks: 100}); err == nil {
		t.Fatal("want Ks error")
	}
	if _, err := TrainRQ(data, 10, 4, RQConfig{Ks: 512}); err == nil {
		t.Fatal("want Ks range error")
	}
	// Tiny training set pads codebooks; codes stay in range.
	rq, err := TrainRQ(data[:5*4], 5, 4, RQConfig{Levels: 2, Ks: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	code := rq.Encode(data[:4], nil)
	for _, c := range code {
		if int(c) >= rq.Ks {
			t.Fatalf("code %d out of range", c)
		}
	}
}
