package quant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: SQ reconstruction error never exceeds one quantization
// step per dimension, for arbitrary in-range data.
func TestSQErrorBoundProperty(t *testing.T) {
	f := func(seed int64, nRaw, dRaw uint8) bool {
		n := int(nRaw%30) + 2
		d := int(dRaw%12) + 1
		rng := rand.New(rand.NewSource(seed))
		data := make([]float32, n*d)
		for i := range data {
			data[i] = rng.Float32()*200 - 100
		}
		sq, err := TrainSQ(data, n, d)
		if err != nil {
			return false
		}
		code := make([]byte, d)
		rec := make([]float32, d)
		for i := 0; i < n; i++ {
			row := data[i*d : (i+1)*d]
			var encErr, decErr error
			code, encErr = sq.Encode(row, code)
			rec, decErr = sq.Decode(code, rec)
			if encErr != nil || decErr != nil {
				return false
			}
			for j := range row {
				budget := float64(sq.Step[j]) + 1e-4
				if math.Abs(float64(rec[j]-row[j])) > budget {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: PQ codes are always in range and ADC(code of x, query x)
// is non-negative with Encode/Decode idempotent (re-encoding a
// decoded vector yields the same code).
func TestPQIdempotenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, d, m := 60, 8, 4
		data := make([]float32, n*d)
		for i := range data {
			data[i] = rng.Float32() * 10
		}
		pq, err := TrainPQ(data, n, d, PQConfig{M: m, Ks: 16, Seed: seed, MaxIter: 8})
		if err != nil {
			return false
		}
		code := make([]byte, m)
		rec := make([]float32, d)
		code2 := make([]byte, m)
		for i := 0; i < n; i++ {
			row := data[i*d : (i+1)*d]
			code = pq.Encode(row, code)
			for _, c := range code {
				if int(c) >= pq.Ks {
					return false
				}
			}
			rec = pq.Decode(code, rec)
			code2 = pq.Encode(rec, code2)
			for j := range code {
				if code[j] != code2[j] {
					return false
				}
			}
			if tab := pq.ADC(row); tab.Distance(code) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// Property: pack/unpack of 4-bit codes is lossless — the fast scan on
// a one-entry table reproduces the quantized exact scan within one
// LSB per subquantizer.
func TestPackRoundTripProperty(t *testing.T) {
	f := func(codesRaw []byte, mRaw uint8) bool {
		m := int(mRaw%8) + 1
		if len(codesRaw) < m {
			return true // skip tiny inputs
		}
		n := len(codesRaw) / m
		codes := make([]byte, n*m)
		for i := range codes {
			codes[i] = codesRaw[i] & 0x0f
		}
		pq := &PQ{Dim: m * 2, M: m, Ks: 16, Dsub: 2}
		packed, err := pq.PackCodes4(codes, n)
		if err != nil {
			return false
		}
		// Unpack manually and compare.
		bytesPer := (m + 1) / 2
		for i := 0; i < n; i++ {
			for j := 0; j < m; j++ {
				b := packed[i*bytesPer+j/2]
				var nib byte
				if j%2 == 0 {
					nib = b & 0x0f
				} else {
					nib = b >> 4
				}
				if nib != codes[i*m+j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
