package quant

import "fmt"

// Fast scan: the Go analog of the SIMD-shuffle PQ scan of André et al.
// (Quick ADC / Quicker ADC, Section 2.3(1)). The original keeps each
// 16-entry lookup table in a SIMD register and evaluates 16 codes per
// PSHUFB. Go exposes no shuffle intrinsics (the repro note flags
// weaker SIMD control), so this implementation reproduces the two
// transferable ingredients and fuses them:
//
//  1. table quantization — float32 entries become uint8 so sums fit
//     integer registers (exactly as in Quick ADC); and
//  2. lookup fusion — the tables of two adjacent 4-bit subquantizers
//     are pre-summed into one 256-entry uint16 table indexed directly
//     by the packed code byte, halving the per-code lookups and
//     replacing float adds with integer adds.
//
// E9 measures this scan against the float32 ADC table scan — the same
// comparison the paper cites, with a scalar-sized (rather than
// AVX-sized) win.

// PackCodes4 packs M 4-bit sub-codes per vector, two per byte (low
// nibble = even subquantizer). Requires Ks <= 16.
func (pq *PQ) PackCodes4(codes []byte, n int) ([]byte, error) {
	if pq.Ks > 16 {
		return nil, fmt.Errorf("quant: PackCodes4 requires Ks <= 16, have %d", pq.Ks)
	}
	bytesPer := (pq.M + 1) / 2
	out := make([]byte, n*bytesPer)
	for i := 0; i < n; i++ {
		src := codes[i*pq.M : (i+1)*pq.M]
		dst := out[i*bytesPer : (i+1)*bytesPer]
		for m, c := range src {
			if m%2 == 0 {
				dst[m/2] = c & 0x0f
			} else {
				dst[m/2] |= (c & 0x0f) << 4
			}
		}
	}
	return out, nil
}

// FastTable is the quantized, pair-fused ADC table for Ks<=16
// codebooks: Pairs[j][b] holds the summed uint8-quantized distance
// contributions of subquantizers 2j (low nibble of b) and 2j+1 (high
// nibble). Distances dequantize as Bias + Scale*acc.
type FastTable struct {
	M     int
	Pairs [][]uint16 // (M+1)/2 tables of 256 entries
	Scale float32
	Bias  float32
}

// Quantize converts a float ADC table (Ks must be <= 16) into a packed
// FastTable. Per-subquantizer minima accumulate into Bias; residuals
// share one Scale so every entry fits in a byte before pair fusion.
func (t *ADCTable) Quantize() (*FastTable, error) {
	if t.Ks > 16 {
		return nil, fmt.Errorf("quant: Quantize requires Ks <= 16, have %d", t.Ks)
	}
	ft := &FastTable{M: t.M}
	mins := make([]float32, t.M)
	var maxResid float32
	for m := 0; m < t.M; m++ {
		row := t.Tab[m*t.Ks : (m+1)*t.Ks]
		minv, maxv := row[0], row[0]
		for _, v := range row[1:] {
			if v < minv {
				minv = v
			}
			if v > maxv {
				maxv = v
			}
		}
		mins[m] = minv
		if r := maxv - minv; r > maxResid {
			maxResid = r
		}
		ft.Bias += minv
	}
	if maxResid == 0 {
		ft.Scale = 1
	} else {
		ft.Scale = maxResid / 255
	}
	inv := 1 / ft.Scale
	q8 := func(m, c int) uint16 {
		if c >= t.Ks {
			return 0 // codebooks with Ks < 16 never emit these codes
		}
		// Round to nearest: plain uint16(v) truncation biased every
		// entry low by up to one LSB, so per-row error grew as M*Scale
		// instead of M*Scale/2.
		v := (t.Tab[m*t.Ks+c]-mins[m])*inv + 0.5
		if v > 255 {
			v = 255
		}
		return uint16(v)
	}
	nPairs := (t.M + 1) / 2
	ft.Pairs = make([][]uint16, nPairs)
	for j := 0; j < nPairs; j++ {
		tab := make([]uint16, 256)
		for b := 0; b < 256; b++ {
			sum := q8(2*j, b&0x0f)
			if 2*j+1 < t.M {
				sum += q8(2*j+1, b>>4)
			}
			tab[b] = sum
		}
		ft.Pairs[j] = tab
	}
	return ft, nil
}

// DistanceBatch4 scans n packed 4-bit codes ((M+1)/2 bytes each) and
// writes dequantized approximate distances into out. Each code byte
// costs a single uint16 table lookup.
func (ft *FastTable) DistanceBatch4(packed []byte, out []float32) {
	bytesPer := (ft.M + 1) / 2
	pairs := ft.Pairs
	for i := range out {
		code := packed[i*bytesPer : (i+1)*bytesPer]
		var acc uint32
		for j, b := range code {
			acc += uint32(pairs[j][b])
		}
		out[i] = ft.Bias + ft.Scale*float32(acc)
	}
}

// DistanceBatchNaive is the baseline scan that reads the float32 ADC
// table from memory per code byte. It exists for E9's comparison and
// mirrors ADCTable.Distance over unpacked codes.
func (t *ADCTable) DistanceBatchNaive(codes []byte, out []float32) {
	t.DistanceBatch(codes, out)
}
