package quant

import (
	"fmt"

	"vdbms/internal/kmeans"
	"vdbms/internal/vec"
)

// RQ is a residual (hierarchical) quantizer in the style the paper
// cites for billion-scale deep descriptors (Babenko & Lempitsky,
// Section 2.2(3)): L levels of k-means codebooks where level l
// quantizes the residual left by levels 0..l-1. Reconstruction is the
// sum of one centroid per level, so error decreases with every level
// while the code grows one byte (for Ks<=256) per level.
type RQ struct {
	Dim    int
	Levels int
	Ks     int
	// Codebooks[l] is row-major Ks x Dim.
	Codebooks [][]float32
}

// RQConfig controls TrainRQ.
type RQConfig struct {
	Levels  int // codebook levels; default 4
	Ks      int // centroids per level; default 256
	MaxIter int
	Seed    int64
}

// TrainRQ fits the hierarchical codebooks on n row-major vectors.
func TrainRQ(data []float32, n, d int, cfg RQConfig) (*RQ, error) {
	if cfg.Levels <= 0 {
		cfg.Levels = 4
	}
	if cfg.Ks == 0 {
		cfg.Ks = 256
	}
	if !isPow2(cfg.Ks) || cfg.Ks > 256 {
		return nil, fmt.Errorf("quant: RQ Ks=%d must be a power of two <= 256", cfg.Ks)
	}
	if n == 0 || d <= 0 || len(data) != n*d {
		return nil, fmt.Errorf("quant: bad RQ training shape n=%d d=%d len=%d", n, d, len(data))
	}
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 20
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	rq := &RQ{Dim: d, Levels: cfg.Levels, Ks: cfg.Ks, Codebooks: make([][]float32, cfg.Levels)}
	// Residuals start as the data itself and shrink level by level.
	resid := make([]float32, len(data))
	copy(resid, data)
	for l := 0; l < cfg.Levels; l++ {
		res, err := kmeans.Train(resid, n, d, kmeans.Config{
			K: cfg.Ks, MaxIter: cfg.MaxIter, Seed: cfg.Seed + int64(l),
		})
		if err != nil {
			return nil, fmt.Errorf("quant: RQ level %d: %w", l, err)
		}
		cb := make([]float32, cfg.Ks*d)
		copy(cb, res.Centroids)
		// Pad when the trainer clamped K (tiny training sets).
		for c := res.K; c < cfg.Ks; c++ {
			copy(cb[c*d:(c+1)*d], cb[(res.K-1)*d:res.K*d])
		}
		rq.Codebooks[l] = cb
		// Subtract assigned centroids to form the next residual.
		for i := 0; i < n; i++ {
			cent := res.Centroid(res.Assign[i])
			row := resid[i*d : (i+1)*d]
			for j := range row {
				row[j] -= cent[j]
			}
		}
	}
	return rq, nil
}

// CodeSize returns bytes per encoded vector.
func (rq *RQ) CodeSize() int { return rq.Levels }

// CompressionRatio returns the size reduction versus float32 storage.
func (rq *RQ) CompressionRatio() float64 {
	return float64(rq.Dim*4) / float64(rq.CodeSize())
}

// Encode greedily quantizes v level by level.
func (rq *RQ) Encode(v []float32, code []byte) []byte {
	if cap(code) < rq.Levels {
		code = make([]byte, rq.Levels)
	}
	code = code[:rq.Levels]
	resid := make([]float32, rq.Dim)
	copy(resid, v)
	for l := 0; l < rq.Levels; l++ {
		cb := rq.Codebooks[l]
		best, bestD := 0, float32(0)
		for c := 0; c < rq.Ks; c++ {
			d := vec.SquaredL2(resid, cb[c*rq.Dim:(c+1)*rq.Dim])
			if c == 0 || d < bestD {
				best, bestD = c, d
			}
		}
		code[l] = byte(best)
		cent := cb[best*rq.Dim : (best+1)*rq.Dim]
		for j := range resid {
			resid[j] -= cent[j]
		}
	}
	return code
}

// Decode reconstructs the sum of the selected centroids.
func (rq *RQ) Decode(code []byte, dst []float32) []float32 {
	if cap(dst) < rq.Dim {
		dst = make([]float32, rq.Dim)
	}
	dst = dst[:rq.Dim]
	for j := range dst {
		dst[j] = 0
	}
	for l, c := range code {
		cent := rq.Codebooks[l][int(c)*rq.Dim : (int(c)+1)*rq.Dim]
		for j := range dst {
			dst[j] += cent[j]
		}
	}
	return dst
}

// DistanceL2 computes squared L2 from a raw query to a code via
// reconstruction.
func (rq *RQ) DistanceL2(q []float32, code []byte) float32 {
	rec := rq.Decode(code, nil)
	return vec.SquaredL2(q, rec)
}

// MSE reports mean squared reconstruction error over n vectors, and
// MSEAtLevel reports it using only the first l levels — the measure
// showing hierarchical refinement.
func (rq *RQ) MSE(data []float32, n int) float64 { return rq.MSEAtLevel(data, n, rq.Levels) }

// MSEAtLevel truncates reconstruction to the first l levels.
func (rq *RQ) MSEAtLevel(data []float32, n, l int) float64 {
	if l > rq.Levels {
		l = rq.Levels
	}
	var s float64
	code := make([]byte, rq.Levels)
	rec := make([]float32, rq.Dim)
	for i := 0; i < n; i++ {
		row := data[i*rq.Dim : (i+1)*rq.Dim]
		code = rq.Encode(row, code)
		rec = rq.Decode(code[:l], rec)
		for j := range row {
			d := float64(row[j] - rec[j])
			s += d * d
		}
	}
	return s / float64(n*rq.Dim)
}
