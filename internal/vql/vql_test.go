package vql

import (
	"strings"
	"testing"

	"vdbms"
	"vdbms/internal/dataset"
)

func TestParseFull(t *testing.T) {
	q, err := Parse("SELECT 10 FROM products WHERE price < 20.5 AND brand = 'acme' AND cat IN (1, 2, 3) NEAR [0.1, -2, 3e1] WITH ef = 100, policy = 'rule'")
	if err != nil {
		t.Fatal(err)
	}
	if q.K != 10 || q.Collection != "products" {
		t.Fatalf("header: %+v", q)
	}
	if len(q.Filters) != 3 {
		t.Fatalf("filters: %+v", q.Filters)
	}
	if q.Filters[0].Op != "<" || q.Filters[0].Value.(float64) != 20.5 {
		t.Fatalf("f0 = %+v", q.Filters[0])
	}
	if q.Filters[1].Op != "=" || q.Filters[1].Value.(string) != "acme" {
		t.Fatalf("f1 = %+v", q.Filters[1])
	}
	if q.Filters[2].Op != "in" || len(q.Filters[2].Set) != 3 || q.Filters[2].Set[0].(int) != 1 {
		t.Fatalf("f2 = %+v", q.Filters[2])
	}
	if len(q.Vector) != 3 || q.Vector[0] != 0.1 || q.Vector[1] != -2 || q.Vector[2] != 30 {
		t.Fatalf("vector = %v", q.Vector)
	}
	if q.Ef != 100 || q.Policy != "rule" {
		t.Fatalf("options: %+v", q)
	}
}

func TestParseMinimal(t *testing.T) {
	q, err := Parse("select 5 from c near [1,2]")
	if err != nil {
		t.Fatal(err)
	}
	if q.K != 5 || q.Collection != "c" || len(q.Vector) != 2 || len(q.Filters) != 0 {
		t.Fatalf("%+v", q)
	}
}

func TestParseOperators(t *testing.T) {
	for _, op := range []string{"=", "==", "!=", "<", "<=", ">", ">="} {
		q, err := Parse("SELECT 1 FROM c WHERE x " + op + " 5 NEAR [1]")
		if err != nil {
			t.Fatalf("op %s: %v", op, err)
		}
		want := op
		if op == "==" {
			want = "="
		}
		if q.Filters[0].Op != want {
			t.Fatalf("op %s parsed as %s", op, q.Filters[0].Op)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"SELECT",
		"SELECT x FROM c NEAR [1]",
		"SELECT 0 FROM c NEAR [1]",
		"SELECT 5 FROM c",                        // missing NEAR
		"SELECT 5 FROM c NEAR []",                // empty vector
		"SELECT 5 FROM c NEAR [1] WITH ef",       // missing =
		"SELECT 5 FROM c NEAR [1] WITH ef = 'x'", // wrong type
		"SELECT 5 FROM c NEAR [1] WITH zz = 1",
		"SELECT 5 FROM c NEAR [1] WITH policy = 3",
		"SELECT 5 FROM c WHERE NEAR [1]",
		"SELECT 5 FROM c WHERE x ~ 3 NEAR [1]",
		"SELECT 5 FROM c WHERE x IN 3 NEAR [1]",
		"SELECT 5 FROM c WHERE x IN (3; 4) NEAR [1]",
		"SELECT 5 FROM c BOGUS [1]",
		"SELECT 5 FROM c NEAR [1] 'trailing",
		"SELECT 5 FROM c NEAR [a]",
		"SELECT 5 FROM 42 NEAR [1]",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Fatalf("no error for %q", src)
		}
	}
}

func TestLexStringsAndNumbers(t *testing.T) {
	toks, err := lex("'hello world' -3.5e-2 foo_bar <=")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 4 {
		t.Fatalf("toks = %+v", toks)
	}
	if toks[0].kind != tokString || toks[0].text != "hello world" {
		t.Fatalf("string tok = %+v", toks[0])
	}
	if toks[1].kind != tokNumber || toks[1].text != "-3.5e-2" {
		t.Fatalf("number tok = %+v", toks[1])
	}
	if toks[3].text != "<=" {
		t.Fatalf("op tok = %+v", toks[3])
	}
	if _, err := lex("@"); err == nil {
		t.Fatal("want lex error")
	}
}

func TestExecuteEndToEnd(t *testing.T) {
	db := vdbms.New()
	col, err := db.CreateCollection("items", vdbms.Schema{
		Dim:        4,
		Attributes: map[string]string{"price": "float"},
	})
	if err != nil {
		t.Fatal(err)
	}
	ds := dataset.Clustered(200, 4, 3, 0.3, 1)
	for i := 0; i < 200; i++ {
		if _, err := col.Insert(ds.Row(i), map[string]any{"price": float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	row := ds.Row(7)
	var sb strings.Builder
	sb.WriteString("SELECT 3 FROM items WHERE price < 100.0 NEAR [")
	for i, x := range row {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(trimFloat(x))
	}
	sb.WriteString("]")
	res, err := Execute(db, sb.String())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != 3 || res.Hits[0].ID != 7 {
		t.Fatalf("hits = %v", res.Hits)
	}
	// Unknown collection.
	if _, err := Execute(db, "SELECT 1 FROM nope NEAR [1,2,3,4]"); err == nil {
		t.Fatal("want unknown-collection error")
	}
	// Parse error propagates.
	if _, err := Execute(db, "SELECT"); err == nil {
		t.Fatal("want parse error")
	}
}

func trimFloat(x float32) string {
	s := strings.TrimRight(strings.TrimRight(
		// enough digits to reconstruct float32 exactly for the test
		fmtFloat(x), "0"), ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

func fmtFloat(x float32) string {
	return strconvFormat(float64(x))
}
