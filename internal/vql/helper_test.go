package vql

import "strconv"

func strconvFormat(x float64) string { return strconv.FormatFloat(x, 'f', 6, 64) }
