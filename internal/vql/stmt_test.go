package vql

import (
	"strings"
	"testing"

	"vdbms"
)

func TestRunFullLifecycle(t *testing.T) {
	db := vdbms.New()

	res, err := Run(db, "CREATE COLLECTION docs DIM 4 METRIC 'l2' ATTR price float, brand string")
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != "create_collection" || !strings.Contains(res.Message, "docs") {
		t.Fatalf("create: %+v", res)
	}

	// Insert rows with and without SET.
	for i := 0; i < 20; i++ {
		res, err = Run(db, "INSERT INTO docs VECTOR [1, 2, 3, 4] SET price = 9.5, brand = 'acme'")
		if err != nil {
			t.Fatal(err)
		}
		if res.Kind != "insert" || res.ID != int64(i) {
			t.Fatalf("insert %d: %+v", i, res)
		}
	}

	res, err = Run(db, "CREATE INDEX hnsw ON docs WITH m = 4, efc = 16")
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != "create_index" {
		t.Fatalf("index: %+v", res)
	}
	col, _ := db.Collection("docs")
	if kind, _, _ := col.IndexInfo(); kind != "hnsw" {
		t.Fatalf("index kind %q", kind)
	}

	res, err = Run(db, "SELECT 3 FROM docs WHERE brand = 'acme' NEAR [1, 2, 3, 4] WITH ef = 32")
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != "select" || len(res.Search.Hits) != 3 {
		t.Fatalf("select: %+v", res)
	}

	res, err = Run(db, "DELETE FROM docs ID 0")
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != "delete" {
		t.Fatalf("delete: %+v", res)
	}
	if col.Len() != 19 {
		t.Fatalf("len after delete = %d", col.Len())
	}
}

func TestRunErrors(t *testing.T) {
	db := vdbms.New()
	Run(db, "CREATE COLLECTION c DIM 2") //nolint:errcheck
	cases := []string{
		"",
		"@",
		"DROP TABLE c",
		"CREATE TABLE c",
		"CREATE COLLECTION c DIM 2",                // duplicate
		"CREATE COLLECTION d DIM 'x'",              // non-integer dim
		"CREATE COLLECTION d DIM 2 METRIC 5",       // non-string metric
		"CREATE COLLECTION d DIM 2 BOGUS",          // unknown clause
		"CREATE INDEX hnsw ON missing",             // unknown collection
		"CREATE INDEX bogus ON c",                  // unknown index kind
		"CREATE INDEX hnsw ON c WITH m",            // missing =
		"CREATE INDEX hnsw ON c WITH m = 'x'",      // non-integer option
		"INSERT INTO missing VECTOR [1,2]",         // unknown collection
		"INSERT INTO c VECTOR [1]",                 // dim mismatch
		"INSERT INTO c VECTOR [1,2] SET a = 1",     // unknown column
		"INSERT INTO c VECTOR",                     // missing literal
		"DELETE FROM missing ID 0",                 // unknown collection
		"DELETE FROM c ID 99",                      // out of range
		"DELETE FROM c ID 'x'",                     // non-integer
		"SELECT 1 FROM missing NEAR [1,2]",         // unknown collection
		"INSERT INTO c VECTOR [1,2] SET a = [1,2]", // bad literal
	}
	for _, src := range cases {
		if _, err := Run(db, src); err == nil {
			t.Fatalf("no error for %q", src)
		}
	}
}

func TestRunSelectMatchesExecute(t *testing.T) {
	db := vdbms.New()
	Run(db, "CREATE COLLECTION c DIM 2")   //nolint:errcheck
	Run(db, "INSERT INTO c VECTOR [0, 0]") //nolint:errcheck
	Run(db, "INSERT INTO c VECTOR [5, 5]") //nolint:errcheck
	res, err := Run(db, "SELECT 1 FROM c NEAR [1, 1]")
	if err != nil {
		t.Fatal(err)
	}
	old, err := Execute(db, "SELECT 1 FROM c NEAR [1, 1]")
	if err != nil {
		t.Fatal(err)
	}
	if res.Search.Hits[0].ID != old.Hits[0].ID || res.Search.Hits[0].ID != 0 {
		t.Fatalf("Run %v vs Execute %v", res.Search.Hits, old.Hits)
	}
}
