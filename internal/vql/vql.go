// Package vql implements a small query language for the VDBMS — the
// "SQL extension" style of query interface of Section 2.1 that
// extended systems (pgvector, PASE) expose, scaled down to this
// engine's capabilities:
//
//	SELECT 10 FROM products
//	  WHERE price < 20 AND brand = 'acme'
//	  NEAR [0.12, 0.9, ...]
//	  WITH ef = 100, policy = 'cost'
//
// Clauses: SELECT <k>, FROM <collection>, optional WHERE with AND-ed
// comparisons (=, !=, <, <=, >, >=, IN (...)), NEAR <vector literal>,
// optional WITH for knobs (ef, nprobe, alpha, policy).
package vql

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"vdbms"
)

// Query is a parsed statement.
type Query struct {
	K          int
	Collection string
	Filters    []vdbms.Filter
	Vector     []float32
	Ef         int
	NProbe     int
	Alpha      int
	Policy     string
}

// Parse compiles one statement.
func Parse(input string) (*Query, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.query()
	if err != nil {
		return nil, fmt.Errorf("vql: %w", err)
	}
	return q, nil
}

// Execute parses and runs a statement against the database.
func Execute(db *vdbms.DB, input string) (vdbms.SearchResult, error) {
	q, err := Parse(input)
	if err != nil {
		return vdbms.SearchResult{}, err
	}
	col, err := db.Collection(q.Collection)
	if err != nil {
		return vdbms.SearchResult{}, err
	}
	return col.Search(vdbms.SearchRequest{
		Vector:  q.Vector,
		K:       q.K,
		Filters: q.Filters,
		Policy:  q.Policy,
		Ef:      q.Ef,
		NProbe:  q.NProbe,
		Alpha:   q.Alpha,
	})
}

type tokKind int

const (
	tokWord tokKind = iota
	tokNumber
	tokString
	tokSymbol // punctuation and operators
)

type token struct {
	kind tokKind
	text string
}

func lex(s string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(s) {
		c := rune(s[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '\'':
			j := i + 1
			for j < len(s) && s[j] != '\'' {
				j++
			}
			if j == len(s) {
				return nil, fmt.Errorf("vql: unterminated string at %d", i)
			}
			toks = append(toks, token{tokString, s[i+1 : j]})
			i = j + 1
		case unicode.IsDigit(c) || c == '-' || c == '+' || c == '.':
			j := i
			if s[j] == '-' || s[j] == '+' {
				j++
			}
			for j < len(s) && (unicode.IsDigit(rune(s[j])) || s[j] == '.' || s[j] == 'e' || s[j] == 'E' ||
				((s[j] == '-' || s[j] == '+') && (s[j-1] == 'e' || s[j-1] == 'E'))) {
				j++
			}
			toks = append(toks, token{tokNumber, s[i:j]})
			i = j
		case unicode.IsLetter(c) || c == '_':
			j := i
			for j < len(s) && (unicode.IsLetter(rune(s[j])) || unicode.IsDigit(rune(s[j])) || s[j] == '_') {
				j++
			}
			toks = append(toks, token{tokWord, s[i:j]})
			i = j
		default:
			// multi-char operators
			if i+1 < len(s) {
				two := s[i : i+2]
				if two == "<=" || two == ">=" || two == "!=" || two == "==" {
					toks = append(toks, token{tokSymbol, two})
					i += 2
					continue
				}
			}
			switch c {
			case '[', ']', '(', ')', ',', '=', '<', '>':
				toks = append(toks, token{tokSymbol, string(c)})
				i++
			default:
				return nil, fmt.Errorf("vql: unexpected character %q at %d", c, i)
			}
		}
	}
	return toks, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() (token, bool) {
	if p.pos >= len(p.toks) {
		return token{}, false
	}
	return p.toks[p.pos], true
}

func (p *parser) next() (token, error) {
	t, ok := p.peek()
	if !ok {
		return token{}, fmt.Errorf("unexpected end of query")
	}
	p.pos++
	return t, nil
}

func (p *parser) expectWord(word string) error {
	t, err := p.next()
	if err != nil {
		return err
	}
	if t.kind != tokWord || !strings.EqualFold(t.text, word) {
		return fmt.Errorf("expected %s, got %q", word, t.text)
	}
	return nil
}

func (p *parser) expectSymbol(sym string) error {
	t, err := p.next()
	if err != nil {
		return err
	}
	if t.kind != tokSymbol || t.text != sym {
		return fmt.Errorf("expected %q, got %q", sym, t.text)
	}
	return nil
}

func (p *parser) query() (*Query, error) {
	q := &Query{}
	if err := p.expectWord("SELECT"); err != nil {
		return nil, err
	}
	kt, err := p.next()
	if err != nil {
		return nil, err
	}
	if kt.kind != tokNumber {
		return nil, fmt.Errorf("SELECT needs a result count, got %q", kt.text)
	}
	k, err := strconv.Atoi(kt.text)
	if err != nil || k <= 0 {
		return nil, fmt.Errorf("bad k %q", kt.text)
	}
	q.K = k
	if err := p.expectWord("FROM"); err != nil {
		return nil, err
	}
	ct, err := p.next()
	if err != nil {
		return nil, err
	}
	if ct.kind != tokWord {
		return nil, fmt.Errorf("FROM needs a collection name, got %q", ct.text)
	}
	q.Collection = ct.text

	for {
		t, ok := p.peek()
		if !ok {
			break
		}
		if t.kind != tokWord {
			return nil, fmt.Errorf("expected clause keyword, got %q", t.text)
		}
		switch strings.ToUpper(t.text) {
		case "WHERE":
			p.pos++
			if err := p.where(q); err != nil {
				return nil, err
			}
		case "NEAR":
			p.pos++
			v, err := p.vector()
			if err != nil {
				return nil, err
			}
			q.Vector = v
		case "WITH":
			p.pos++
			if err := p.with(q); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("unknown clause %q", t.text)
		}
	}
	if q.Vector == nil {
		return nil, fmt.Errorf("missing NEAR clause")
	}
	return q, nil
}

func (p *parser) where(q *Query) error {
	for {
		f, err := p.condition()
		if err != nil {
			return err
		}
		q.Filters = append(q.Filters, f)
		t, ok := p.peek()
		if !ok || t.kind != tokWord || !strings.EqualFold(t.text, "AND") {
			return nil
		}
		p.pos++
	}
}

func (p *parser) condition() (vdbms.Filter, error) {
	col, err := p.next()
	if err != nil {
		return vdbms.Filter{}, err
	}
	if col.kind != tokWord {
		return vdbms.Filter{}, fmt.Errorf("expected column name, got %q", col.text)
	}
	opTok, err := p.next()
	if err != nil {
		return vdbms.Filter{}, err
	}
	if opTok.kind == tokWord && strings.EqualFold(opTok.text, "IN") {
		if err := p.expectSymbol("("); err != nil {
			return vdbms.Filter{}, err
		}
		var set []any
		for {
			lit, err := p.literal()
			if err != nil {
				return vdbms.Filter{}, err
			}
			set = append(set, lit)
			t, err := p.next()
			if err != nil {
				return vdbms.Filter{}, err
			}
			if t.text == ")" {
				break
			}
			if t.text != "," {
				return vdbms.Filter{}, fmt.Errorf("expected , or ) in IN list, got %q", t.text)
			}
		}
		return vdbms.Filter{Column: col.text, Op: "in", Set: set}, nil
	}
	if opTok.kind != tokSymbol {
		return vdbms.Filter{}, fmt.Errorf("expected operator after %q, got %q", col.text, opTok.text)
	}
	op := opTok.text
	if op == "==" {
		op = "="
	}
	val, err := p.literal()
	if err != nil {
		return vdbms.Filter{}, err
	}
	return vdbms.Filter{Column: col.text, Op: op, Value: val}, nil
}

// literal returns a string, int, or float64.
func (p *parser) literal() (any, error) {
	t, err := p.next()
	if err != nil {
		return nil, err
	}
	switch t.kind {
	case tokString:
		return t.text, nil
	case tokNumber:
		if !strings.ContainsAny(t.text, ".eE") {
			if i, err := strconv.Atoi(t.text); err == nil {
				return i, nil
			}
		}
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q", t.text)
		}
		return f, nil
	default:
		return nil, fmt.Errorf("expected literal, got %q", t.text)
	}
}

func (p *parser) vector() ([]float32, error) {
	if err := p.expectSymbol("["); err != nil {
		return nil, err
	}
	var out []float32
	for {
		t, err := p.next()
		if err != nil {
			return nil, err
		}
		if t.text == "]" {
			break
		}
		if t.text == "," {
			continue
		}
		if t.kind != tokNumber {
			return nil, fmt.Errorf("expected number in vector, got %q", t.text)
		}
		f, err := strconv.ParseFloat(t.text, 32)
		if err != nil {
			return nil, fmt.Errorf("bad number %q", t.text)
		}
		out = append(out, float32(f))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty vector literal")
	}
	return out, nil
}

func (p *parser) with(q *Query) error {
	for {
		key, err := p.next()
		if err != nil {
			return err
		}
		if key.kind != tokWord {
			return fmt.Errorf("expected option name, got %q", key.text)
		}
		if err := p.expectSymbol("="); err != nil {
			return err
		}
		val, err := p.literal()
		if err != nil {
			return err
		}
		switch strings.ToLower(key.text) {
		case "ef":
			i, ok := val.(int)
			if !ok {
				return fmt.Errorf("ef must be an integer")
			}
			q.Ef = i
		case "nprobe":
			i, ok := val.(int)
			if !ok {
				return fmt.Errorf("nprobe must be an integer")
			}
			q.NProbe = i
		case "alpha":
			i, ok := val.(int)
			if !ok {
				return fmt.Errorf("alpha must be an integer")
			}
			q.Alpha = i
		case "policy":
			s, ok := val.(string)
			if !ok {
				return fmt.Errorf("policy must be a string")
			}
			q.Policy = s
		default:
			return fmt.Errorf("unknown option %q", key.text)
		}
		t, ok := p.peek()
		if !ok || t.text != "," {
			return nil
		}
		p.pos++
	}
}
