package vql

import (
	"fmt"
	"strings"

	"vdbms"
)

// Statements beyond SELECT make vql a complete data-definition and
// manipulation interface (the extended-system style of Section 2.4,
// where the query language grows vector operators):
//
//	CREATE COLLECTION docs DIM 64 METRIC 'cosine' ATTR price float, brand string
//	CREATE INDEX hnsw ON docs WITH m = 16
//	INSERT INTO docs VECTOR [0.1, ...] SET price = 9.5, brand = 'acme'
//	DELETE FROM docs ID 42
//	SELECT 10 FROM docs WHERE price < 20 NEAR [...] WITH ef = 100
//
// Run parses and executes any statement; Execute remains the
// SELECT-only fast path.

// Result is the outcome of Run: exactly one field is meaningful per
// statement kind.
type Result struct {
	// Kind is "select", "create_collection", "create_index",
	// "insert", or "delete".
	Kind string
	// Search holds SELECT results.
	Search vdbms.SearchResult
	// ID is the assigned id for INSERT.
	ID int64
	// Message summarizes DDL outcomes.
	Message string
}

// Run parses and executes one statement against the database.
func Run(db *vdbms.DB, input string) (Result, error) {
	toks, err := lex(input)
	if err != nil {
		return Result{}, err
	}
	if len(toks) == 0 {
		return Result{}, fmt.Errorf("vql: empty statement")
	}
	p := &parser{toks: toks}
	head, _ := p.peek()
	switch strings.ToUpper(head.text) {
	case "SELECT":
		q, err := p.query()
		if err != nil {
			return Result{}, fmt.Errorf("vql: %w", err)
		}
		col, err := db.Collection(q.Collection)
		if err != nil {
			return Result{}, err
		}
		res, err := col.Search(vdbms.SearchRequest{
			Vector: q.Vector, K: q.K, Filters: q.Filters,
			Policy: q.Policy, Ef: q.Ef, NProbe: q.NProbe, Alpha: q.Alpha,
		})
		if err != nil {
			return Result{}, err
		}
		return Result{Kind: "select", Search: res}, nil
	case "CREATE":
		return p.create(db)
	case "INSERT":
		return p.insert(db)
	case "DELETE":
		return p.delete(db)
	default:
		return Result{}, fmt.Errorf("vql: unknown statement %q", head.text)
	}
}

func (p *parser) create(db *vdbms.DB) (Result, error) {
	if err := p.expectWord("CREATE"); err != nil {
		return Result{}, err
	}
	kind, err := p.next()
	if err != nil {
		return Result{}, err
	}
	switch strings.ToUpper(kind.text) {
	case "COLLECTION":
		return p.createCollection(db)
	case "INDEX":
		return p.createIndex(db)
	default:
		return Result{}, fmt.Errorf("vql: CREATE %s not supported", kind.text)
	}
}

func (p *parser) createCollection(db *vdbms.DB) (Result, error) {
	name, err := p.word("collection name")
	if err != nil {
		return Result{}, err
	}
	if err := p.expectWord("DIM"); err != nil {
		return Result{}, err
	}
	dim, err := p.intLit("dimension")
	if err != nil {
		return Result{}, err
	}
	schema := vdbms.Schema{Dim: dim, Attributes: map[string]string{}}
	for {
		t, ok := p.peek()
		if !ok {
			break
		}
		switch strings.ToUpper(t.text) {
		case "METRIC":
			p.pos++
			lit, err := p.literal()
			if err != nil {
				return Result{}, err
			}
			s, ok := lit.(string)
			if !ok {
				return Result{}, fmt.Errorf("vql: METRIC needs a string")
			}
			schema.Metric = s
		case "ATTR":
			p.pos++
			for {
				col, err := p.word("attribute name")
				if err != nil {
					return Result{}, err
				}
				typ, err := p.word("attribute type")
				if err != nil {
					return Result{}, err
				}
				schema.Attributes[col] = strings.ToLower(typ)
				nt, ok := p.peek()
				if !ok || nt.text != "," {
					break
				}
				p.pos++
			}
		default:
			return Result{}, fmt.Errorf("vql: unexpected %q in CREATE COLLECTION", t.text)
		}
	}
	if _, err := db.CreateCollection(name, schema); err != nil {
		return Result{}, err
	}
	return Result{Kind: "create_collection", Message: fmt.Sprintf("created collection %q (dim %d)", name, dim)}, nil
}

func (p *parser) createIndex(db *vdbms.DB) (Result, error) {
	kind, err := p.word("index kind")
	if err != nil {
		return Result{}, err
	}
	if err := p.expectWord("ON"); err != nil {
		return Result{}, err
	}
	name, err := p.word("collection name")
	if err != nil {
		return Result{}, err
	}
	opts := map[string]int{}
	if t, ok := p.peek(); ok && strings.EqualFold(t.text, "WITH") {
		p.pos++
		for {
			key, err := p.word("option name")
			if err != nil {
				return Result{}, err
			}
			if err := p.expectSymbol("="); err != nil {
				return Result{}, err
			}
			val, err := p.intLit("option value")
			if err != nil {
				return Result{}, err
			}
			opts[strings.ToLower(key)] = val
			nt, ok := p.peek()
			if !ok || nt.text != "," {
				break
			}
			p.pos++
		}
	}
	col, err := db.Collection(name)
	if err != nil {
		return Result{}, err
	}
	if err := col.CreateIndex(kind, opts); err != nil {
		return Result{}, err
	}
	return Result{Kind: "create_index", Message: fmt.Sprintf("built %s index on %q", kind, name)}, nil
}

func (p *parser) insert(db *vdbms.DB) (Result, error) {
	if err := p.expectWord("INSERT"); err != nil {
		return Result{}, err
	}
	if err := p.expectWord("INTO"); err != nil {
		return Result{}, err
	}
	name, err := p.word("collection name")
	if err != nil {
		return Result{}, err
	}
	if err := p.expectWord("VECTOR"); err != nil {
		return Result{}, err
	}
	v, err := p.vector()
	if err != nil {
		return Result{}, err
	}
	var attrs map[string]any
	if t, ok := p.peek(); ok && strings.EqualFold(t.text, "SET") {
		p.pos++
		attrs = map[string]any{}
		for {
			col, err := p.word("attribute name")
			if err != nil {
				return Result{}, err
			}
			if err := p.expectSymbol("="); err != nil {
				return Result{}, err
			}
			val, err := p.literal()
			if err != nil {
				return Result{}, err
			}
			attrs[col] = val
			nt, ok := p.peek()
			if !ok || nt.text != "," {
				break
			}
			p.pos++
		}
	}
	col, err := db.Collection(name)
	if err != nil {
		return Result{}, err
	}
	id, err := col.Insert(v, attrs)
	if err != nil {
		return Result{}, err
	}
	return Result{Kind: "insert", ID: id}, nil
}

func (p *parser) delete(db *vdbms.DB) (Result, error) {
	if err := p.expectWord("DELETE"); err != nil {
		return Result{}, err
	}
	if err := p.expectWord("FROM"); err != nil {
		return Result{}, err
	}
	name, err := p.word("collection name")
	if err != nil {
		return Result{}, err
	}
	if err := p.expectWord("ID"); err != nil {
		return Result{}, err
	}
	id, err := p.intLit("id")
	if err != nil {
		return Result{}, err
	}
	col, err := db.Collection(name)
	if err != nil {
		return Result{}, err
	}
	if err := col.Delete(int64(id)); err != nil {
		return Result{}, err
	}
	return Result{Kind: "delete", Message: fmt.Sprintf("deleted id %d from %q", id, name)}, nil
}

// word consumes an identifier token.
func (p *parser) word(what string) (string, error) {
	t, err := p.next()
	if err != nil {
		return "", err
	}
	if t.kind != tokWord {
		return "", fmt.Errorf("vql: expected %s, got %q", what, t.text)
	}
	return t.text, nil
}

// intLit consumes an integer literal.
func (p *parser) intLit(what string) (int, error) {
	lit, err := p.literal()
	if err != nil {
		return 0, err
	}
	i, ok := lit.(int)
	if !ok {
		return 0, fmt.Errorf("vql: %s must be an integer", what)
	}
	return i, nil
}
