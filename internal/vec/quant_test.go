package vec_test

import (
	"math"
	"math/rand"
	"testing"

	"vdbms/internal/quant"
	"vdbms/internal/vec"
)

// decode reconstructs row i the way the LUT does, so the reference
// distances below share the kernel's quantization error and isolate
// the kernel's *arithmetic* for testing.
func decodeSQ8(min, step []float32, codes []byte, i, d int) []float32 {
	out := make([]float32, d)
	for j, c := range codes[i*d : (i+1)*d] {
		out[j] = min[j] + float32(c)*step[j]
	}
	return out
}

// TestSQ8KernelMatchesDecodedDistances: for every supported metric the
// LUT gather must equal the metric computed on the decoded row — the
// kernel removes the decode, not the math.
func TestSQ8KernelMatchesDecodedDistances(t *testing.T) {
	const n, d = 200, 13 // odd dim exercises the gather tail loop
	rng := rand.New(rand.NewSource(42))
	data := make([]float32, n*d)
	for i := range data {
		data[i] = rng.Float32()*4 - 2
	}
	sq, err := quant.TrainSQ(data, n, d)
	if err != nil {
		t.Fatal(err)
	}
	codes := make([]byte, n*d)
	for i := 0; i < n; i++ {
		if _, err := sq.Encode(data[i*d:(i+1)*d], codes[i*d:(i+1)*d]); err != nil {
			t.Fatal(err)
		}
	}
	q := make([]float32, d)
	for j := range q {
		q[j] = rng.Float32()*4 - 2
	}
	for _, m := range []vec.Metric{vec.L2, vec.InnerProduct, vec.Cosine} {
		s, err := vec.NewSQ8Scorer(m, sq.Min, sq.Step, codes, n, d)
		if err != nil {
			t.Fatal(err)
		}
		if s.BytesPerRow() >= 4*d {
			t.Fatalf("%s: BytesPerRow %d is not compressed vs %d", m, s.BytesPerRow(), 4*d)
		}
		fn := vec.Distance(m)
		b := s.Bind(q)
		for i := 0; i < n; i++ {
			want := fn(q, decodeSQ8(sq.Min, sq.Step, codes, i, d))
			if got := b.ScoreAt(i); math.Abs(float64(got-want)) > 1e-4 {
				t.Fatalf("%s row %d: ScoreAt %v, decoded %v", m, i, got, want)
			}
		}
		// Block and gather entry points agree with ScoreAt bit-exactly:
		// they share the same accumulation order.
		blk := make([]float32, n)
		b.ScoreBlock(0, n, blk)
		ids := make([]int32, n)
		for i := range ids {
			ids[i] = int32(n - 1 - i)
		}
		gat := make([]float32, n)
		b.ScoreIDs(ids, gat)
		for i := 0; i < n; i++ {
			if blk[i] != b.ScoreAt(i) {
				t.Fatalf("%s row %d: ScoreBlock %v != ScoreAt %v", m, i, blk[i], b.ScoreAt(i))
			}
			if gat[i] != b.ScoreAt(n-1-i) {
				t.Fatalf("%s gather %d: %v != ScoreAt %v", m, i, gat[i], b.ScoreAt(n-1-i))
			}
		}
	}
}

// TestSQ8KernelQuantizationError: against the *original* rows the
// kernel's error is bounded by the codec, not the kernel — spot-check
// that L2 distances stay within the per-dimension step budget.
func TestSQ8KernelQuantizationError(t *testing.T) {
	const n, d = 100, 16
	rng := rand.New(rand.NewSource(7))
	data := make([]float32, n*d)
	for i := range data {
		data[i] = rng.Float32()
	}
	sq, err := quant.TrainSQ(data, n, d)
	if err != nil {
		t.Fatal(err)
	}
	codes := make([]byte, n*d)
	for i := 0; i < n; i++ {
		if _, err := sq.Encode(data[i*d:(i+1)*d], codes[i*d:(i+1)*d]); err != nil {
			t.Fatal(err)
		}
	}
	s, err := vec.NewSQ8Scorer(vec.L2, sq.Min, sq.Step, codes, n, d)
	if err != nil {
		t.Fatal(err)
	}
	q := data[:d]
	b := s.Bind(q)
	// Worst case per dimension: |recon - x| <= step/2, so the squared
	// distance shifts by at most sum over dims of (2*|diff_j|*e + e^2)
	// with e = step_j/2; bound loosely with the max step.
	var maxStep float32
	for _, st := range sq.Step {
		if st > maxStep {
			maxStep = st
		}
	}
	for i := 0; i < n; i++ {
		exact := vec.SquaredL2(q, data[i*d:(i+1)*d])
		got := b.ScoreAt(i)
		e := float64(maxStep) / 2
		slack := float64(d) * (2*math.Sqrt(float64(exact))*e + e*e)
		if math.Abs(float64(got-exact)) > slack+1e-5 {
			t.Fatalf("row %d: |%v - %v| exceeds quantization budget %v", i, got, exact, slack)
		}
	}
}

func TestSQ8KernelRejectsBadInputs(t *testing.T) {
	min, step := []float32{0, 0}, []float32{1, 1}
	codes := []byte{0, 0, 0, 0}
	if _, err := vec.NewSQ8Scorer(vec.Hamming, min, step, codes, 2, 2); err == nil {
		t.Fatal("hamming does not decompose into per-byte terms; want error")
	}
	if _, err := vec.NewSQ8Scorer(vec.L2, min, step, codes[:3], 2, 2); err == nil {
		t.Fatal("short codes; want error")
	}
	if _, err := vec.NewSQ8Scorer(vec.L2, min[:1], step, codes, 2, 2); err == nil {
		t.Fatal("short ranges; want error")
	}
}
