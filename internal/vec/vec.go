// Package vec provides the similarity-score layer of the VDBMS: basic
// scores (Hamming, inner product, cosine, Minkowski, Mahalanobis),
// aggregate scores for multi-vector entities, and learned scores.
//
// Throughout the system, similarity is expressed as a *distance*:
// smaller values mean more similar. Scores that are naturally
// "bigger is better" (inner product, cosine similarity) are negated or
// complemented so that every index and operator can order candidates
// by ascending distance.
package vec

import (
	"errors"
	"fmt"
	"math"
)

// Metric identifies a similarity score from Section 2.1 of the paper.
type Metric int

const (
	// L2 is squared Euclidean distance. Squaring preserves ranking and
	// avoids a sqrt per comparison; APIs that need the true metric can
	// call math.Sqrt on the result.
	L2 Metric = iota
	// InnerProduct orders by negative dot product (maximum inner
	// product search).
	InnerProduct
	// Cosine is cosine distance, 1 - cos(a, b).
	Cosine
	// L1 is Manhattan distance (Minkowski p=1).
	L1
	// Linf is Chebyshev distance (Minkowski p=inf).
	Linf
	// Hamming counts differing signs per dimension; it models binary
	// feature vectors stored as float32 slices.
	Hamming
	// Mahalanobis is a learned metric (x-y)^T M (x-y); the matrix M is
	// supplied via NewMahalanobis.
	Mahalanobis
)

// String returns the canonical lowercase name used by the CLI and the
// HTTP API.
func (m Metric) String() string {
	switch m {
	case L2:
		return "l2"
	case InnerProduct:
		return "ip"
	case Cosine:
		return "cosine"
	case L1:
		return "l1"
	case Linf:
		return "linf"
	case Hamming:
		return "hamming"
	case Mahalanobis:
		return "mahalanobis"
	default:
		return fmt.Sprintf("metric(%d)", int(m))
	}
}

// ParseMetric converts a name accepted by String back to a Metric.
func ParseMetric(s string) (Metric, error) {
	switch s {
	case "l2", "euclidean":
		return L2, nil
	case "ip", "dot", "inner_product":
		return InnerProduct, nil
	case "cosine", "angular":
		return Cosine, nil
	case "l1", "manhattan":
		return L1, nil
	case "linf", "chebyshev":
		return Linf, nil
	case "hamming":
		return Hamming, nil
	case "mahalanobis":
		return Mahalanobis, nil
	}
	return 0, fmt.Errorf("vec: unknown metric %q", s)
}

// ErrDimMismatch is returned when two vectors of different
// dimensionality are compared.
var ErrDimMismatch = errors.New("vec: dimension mismatch")

// DistanceFunc computes the distance between two equal-length vectors.
type DistanceFunc func(a, b []float32) float32

// Distance returns the distance function for a basic metric. It panics
// for Mahalanobis, which carries state and must be built with
// NewMahalanobis.
func Distance(m Metric) DistanceFunc {
	switch m {
	case L2:
		return SquaredL2
	case InnerProduct:
		return NegInnerProduct
	case Cosine:
		return CosineDistance
	case L1:
		return ManhattanDistance
	case Linf:
		return ChebyshevDistance
	case Hamming:
		return HammingDistance
	case Mahalanobis:
		panic("vec: Mahalanobis requires NewMahalanobis(M)")
	default:
		panic("vec: unknown metric " + m.String())
	}
}

// SquaredL2 returns sum((a[i]-b[i])^2). The loop is unrolled four ways;
// on amd64 the compiler vectorizes the independent accumulators, which
// is the portable Go analog of the SIMD kernels cited in Section 2.3.
func SquaredL2(a, b []float32) float32 {
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= len(a); i += 4 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		s0 += d * d
	}
	return s0 + s1 + s2 + s3
}

// Dot returns the dot product of a and b.
func Dot(a, b []float32) float32 {
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < len(a); i++ {
		s0 += a[i] * b[i]
	}
	return s0 + s1 + s2 + s3
}

// NegInnerProduct returns -Dot(a, b) so that maximum inner product
// corresponds to minimum distance.
func NegInnerProduct(a, b []float32) float32 { return -Dot(a, b) }

// Norm returns the Euclidean norm of v.
func Norm(v []float32) float32 {
	return float32(math.Sqrt(float64(Dot(v, v))))
}

// CosineDistance returns 1 - cos(a,b). Zero vectors are treated as
// maximally dissimilar (distance 1) rather than NaN.
func CosineDistance(a, b []float32) float32 {
	var dot, na, nb float32
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 1
	}
	return 1 - dot/float32(math.Sqrt(float64(na)*float64(nb)))
}

// ManhattanDistance returns sum(|a[i]-b[i]|).
func ManhattanDistance(a, b []float32) float32 {
	var s float32
	for i := range a {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		s += d
	}
	return s
}

// ChebyshevDistance returns max(|a[i]-b[i]|).
func ChebyshevDistance(a, b []float32) float32 {
	var m float32
	for i := range a {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}

// HammingDistance counts dimensions where the signs of a and b differ.
// Vectors produced by binary embeddings store each bit as ±1.
func HammingDistance(a, b []float32) float32 {
	var n float32
	for i := range a {
		if (a[i] >= 0) != (b[i] >= 0) {
			n++
		}
	}
	return n
}

// MinkowskiDistance returns the general p-norm distance. p must be
// >= 1; use ManhattanDistance/SquaredL2/ChebyshevDistance for the
// common cases, which are much faster.
func MinkowskiDistance(p float64) DistanceFunc {
	if p < 1 {
		panic("vec: Minkowski requires p >= 1")
	}
	return func(a, b []float32) float32 {
		var s float64
		for i := range a {
			d := math.Abs(float64(a[i] - b[i]))
			s += math.Pow(d, p)
		}
		return float32(math.Pow(s, 1/p))
	}
}

// Normalize scales v to unit Euclidean norm in place and returns it.
// The zero vector is returned unchanged.
func Normalize(v []float32) []float32 {
	n := Norm(v)
	if n == 0 {
		return v
	}
	inv := 1 / n
	for i := range v {
		v[i] *= inv
	}
	return v
}

// Clone returns a copy of v.
func Clone(v []float32) []float32 {
	c := make([]float32, len(v))
	copy(c, v)
	return c
}

// CheckDims validates that a and b have equal length.
func CheckDims(a, b []float32) error {
	if len(a) != len(b) {
		return fmt.Errorf("%w: %d vs %d", ErrDimMismatch, len(a), len(b))
	}
	return nil
}

// Mahalanobis2 is a learned quadratic-form distance (x-y)^T M (x-y)
// with M symmetric positive semi-definite. It implements the "learned
// score" category of Section 2.1.
type Mahalanobis2 struct {
	m   [][]float32 // row-major d x d
	dim int
}

// NewMahalanobis builds a Mahalanobis distance from the matrix M.
// M must be square; symmetry is the caller's responsibility (the
// learned-metric trainer in this package always produces symmetric M).
func NewMahalanobis(m [][]float32) (*Mahalanobis2, error) {
	d := len(m)
	for _, row := range m {
		if len(row) != d {
			return nil, fmt.Errorf("vec: Mahalanobis matrix is not square")
		}
	}
	return &Mahalanobis2{m: m, dim: d}, nil
}

// Dim returns the dimensionality M was built for.
func (mh *Mahalanobis2) Dim() int { return mh.dim }

// Distance computes (a-b)^T M (a-b).
func (mh *Mahalanobis2) Distance(a, b []float32) float32 {
	d := mh.dim
	diff := make([]float32, d)
	for i := 0; i < d; i++ {
		diff[i] = a[i] - b[i]
	}
	var s float32
	for i := 0; i < d; i++ {
		row := mh.m[i]
		var ri float32
		for j := 0; j < d; j++ {
			ri += row[j] * diff[j]
		}
		s += ri * diff[i]
	}
	return s
}

// Func adapts the Mahalanobis distance to a DistanceFunc.
func (mh *Mahalanobis2) Func() DistanceFunc { return mh.Distance }
