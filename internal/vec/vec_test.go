package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestSquaredL2Known(t *testing.T) {
	a := []float32{1, 2, 3}
	b := []float32{4, 6, 3}
	if got := SquaredL2(a, b); got != 25 {
		t.Fatalf("SquaredL2 = %v, want 25", got)
	}
	if got := SquaredL2(a, a); got != 0 {
		t.Fatalf("SquaredL2(a,a) = %v, want 0", got)
	}
}

func TestSquaredL2TailHandling(t *testing.T) {
	// Lengths that are not multiples of the 4-way unroll.
	for n := 0; n <= 9; n++ {
		a := make([]float32, n)
		b := make([]float32, n)
		var want float32
		for i := 0; i < n; i++ {
			a[i] = float32(i + 1)
			b[i] = float32(2 * i)
			d := a[i] - b[i]
			want += d * d
		}
		if got := SquaredL2(a, b); got != want {
			t.Fatalf("n=%d: got %v want %v", n, got, want)
		}
	}
}

func TestDotKnown(t *testing.T) {
	a := []float32{1, 2, 3, 4, 5}
	b := []float32{5, 4, 3, 2, 1}
	if got := Dot(a, b); got != 35 {
		t.Fatalf("Dot = %v, want 35", got)
	}
	if got := NegInnerProduct(a, b); got != -35 {
		t.Fatalf("NegInnerProduct = %v, want -35", got)
	}
}

func TestCosineDistance(t *testing.T) {
	a := []float32{1, 0}
	b := []float32{0, 1}
	if got := CosineDistance(a, b); !almostEq(float64(got), 1, 1e-6) {
		t.Fatalf("orthogonal cosine distance = %v, want 1", got)
	}
	if got := CosineDistance(a, a); !almostEq(float64(got), 0, 1e-6) {
		t.Fatalf("self cosine distance = %v, want 0", got)
	}
	c := []float32{-2, 0}
	if got := CosineDistance(a, c); !almostEq(float64(got), 2, 1e-6) {
		t.Fatalf("opposite cosine distance = %v, want 2", got)
	}
	zero := []float32{0, 0}
	if got := CosineDistance(a, zero); got != 1 {
		t.Fatalf("zero-vector cosine distance = %v, want 1", got)
	}
}

func TestManhattanChebyshev(t *testing.T) {
	a := []float32{1, -2, 3}
	b := []float32{-1, 2, 0}
	if got := ManhattanDistance(a, b); got != 9 {
		t.Fatalf("L1 = %v, want 9", got)
	}
	if got := ChebyshevDistance(a, b); got != 4 {
		t.Fatalf("Linf = %v, want 4", got)
	}
}

func TestHamming(t *testing.T) {
	a := []float32{1, -1, 1, -1}
	b := []float32{1, 1, -1, -1}
	if got := HammingDistance(a, b); got != 2 {
		t.Fatalf("Hamming = %v, want 2", got)
	}
}

func TestMinkowskiMatchesSpecialCases(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := make([]float32, 16)
	b := make([]float32, 16)
	for i := range a {
		a[i] = rng.Float32()
		b[i] = rng.Float32()
	}
	if got, want := MinkowskiDistance(1)(a, b), ManhattanDistance(a, b); !almostEq(float64(got), float64(want), 1e-5) {
		t.Fatalf("p=1: got %v want %v", got, want)
	}
	l2 := float32(math.Sqrt(float64(SquaredL2(a, b))))
	if got := MinkowskiDistance(2)(a, b); !almostEq(float64(got), float64(l2), 1e-5) {
		t.Fatalf("p=2: got %v want %v", got, l2)
	}
}

func TestMinkowskiPanicsBelowOne(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for p < 1")
		}
	}()
	MinkowskiDistance(0.5)
}

func TestMetricRoundTrip(t *testing.T) {
	for _, m := range []Metric{L2, InnerProduct, Cosine, L1, Linf, Hamming, Mahalanobis} {
		got, err := ParseMetric(m.String())
		if err != nil {
			t.Fatalf("ParseMetric(%q): %v", m.String(), err)
		}
		if got != m {
			t.Fatalf("round trip %v -> %v", m, got)
		}
	}
	if _, err := ParseMetric("bogus"); err == nil {
		t.Fatal("expected error for unknown metric")
	}
}

func TestDistanceDispatch(t *testing.T) {
	a := []float32{1, 2}
	b := []float32{3, 4}
	if got := Distance(L2)(a, b); got != 8 {
		t.Fatalf("dispatch L2 = %v, want 8", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic dispatching Mahalanobis")
		}
	}()
	Distance(Mahalanobis)
}

func TestNormalize(t *testing.T) {
	v := []float32{3, 4}
	Normalize(v)
	if !almostEq(float64(Norm(v)), 1, 1e-6) {
		t.Fatalf("norm after Normalize = %v", Norm(v))
	}
	z := []float32{0, 0}
	Normalize(z)
	if z[0] != 0 || z[1] != 0 {
		t.Fatal("zero vector must be unchanged")
	}
}

func TestMahalanobisIdentityIsL2(t *testing.T) {
	d := 8
	m := make([][]float32, d)
	for i := range m {
		m[i] = make([]float32, d)
		m[i][i] = 1
	}
	mh, err := NewMahalanobis(m)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	a := make([]float32, d)
	b := make([]float32, d)
	for i := range a {
		a[i], b[i] = rng.Float32(), rng.Float32()
	}
	if got, want := mh.Distance(a, b), SquaredL2(a, b); !almostEq(float64(got), float64(want), 1e-5) {
		t.Fatalf("identity Mahalanobis = %v, want %v", got, want)
	}
}

func TestNewMahalanobisRejectsNonSquare(t *testing.T) {
	if _, err := NewMahalanobis([][]float32{{1, 2}, {3}}); err == nil {
		t.Fatal("expected error for ragged matrix")
	}
}

// Property: squared L2 is symmetric, non-negative, and zero iff equal
// inputs (for finite floats).
func TestSquaredL2Properties(t *testing.T) {
	f := func(ax, bx [8]int16) bool {
		a := make([]float32, 8)
		b := make([]float32, 8)
		for i := 0; i < 8; i++ {
			a[i] = float32(ax[i]) / 64
			b[i] = float32(bx[i]) / 64
		}
		d1 := SquaredL2(a, b)
		d2 := SquaredL2(b, a)
		return d1 == d2 && d1 >= 0 && SquaredL2(a, a) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: triangle inequality for the true (non-squared) L2 metric
// and for L1.
func TestTriangleInequality(t *testing.T) {
	f := func(ax, bx, cx [6]int8) bool {
		a := make([]float32, 6)
		b := make([]float32, 6)
		c := make([]float32, 6)
		for i := 0; i < 6; i++ {
			a[i], b[i], c[i] = float32(ax[i]), float32(bx[i]), float32(cx[i])
		}
		l2 := func(x, y []float32) float64 { return math.Sqrt(float64(SquaredL2(x, y))) }
		const slack = 1e-4
		if l2(a, c) > l2(a, b)+l2(b, c)+slack {
			return false
		}
		return float64(ManhattanDistance(a, c)) <= float64(ManhattanDistance(a, b))+float64(ManhattanDistance(b, c))+slack
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: cosine distance is invariant to positive scaling.
func TestCosineScaleInvariance(t *testing.T) {
	f := func(ax, bx [5]int8, s uint8) bool {
		scale := float32(s%31) + 1
		a := make([]float32, 5)
		b := make([]float32, 5)
		sb := make([]float32, 5)
		for i := 0; i < 5; i++ {
			a[i], b[i] = float32(ax[i]), float32(bx[i])
			sb[i] = b[i] * scale
		}
		return almostEq(float64(CosineDistance(a, b)), float64(CosineDistance(a, sb)), 1e-4)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBatchKernelsMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n, d = 37, 13
	base := make([]float32, n*d)
	for i := range base {
		base[i] = rng.Float32()
	}
	q := make([]float32, d)
	for i := range q {
		q[i] = rng.Float32()
	}
	out := make([]float32, n)
	SquaredL2Batch(q, base, d, out)
	for i := 0; i < n; i++ {
		if want := SquaredL2(q, base[i*d:(i+1)*d]); out[i] != want {
			t.Fatalf("row %d: batch %v scalar %v", i, out[i], want)
		}
	}
	DotBatch(q, base, d, out)
	for i := 0; i < n; i++ {
		if want := Dot(q, base[i*d:(i+1)*d]); out[i] != want {
			t.Fatalf("dot row %d: batch %v scalar %v", i, out[i], want)
		}
	}
	DistanceBatch(ManhattanDistance, q, base, d, out)
	for i := 0; i < n; i++ {
		if want := ManhattanDistance(q, base[i*d:(i+1)*d]); out[i] != want {
			t.Fatalf("l1 row %d: batch %v scalar %v", i, out[i], want)
		}
	}
}

func TestMeanAndAXPY(t *testing.T) {
	m := Mean([][]float32{{1, 3}, {3, 5}})
	if m[0] != 2 || m[1] != 4 {
		t.Fatalf("Mean = %v", m)
	}
	if Mean(nil) != nil {
		t.Fatal("Mean(nil) should be nil")
	}
	y := []float32{1, 1}
	AXPY(2, []float32{3, 4}, y)
	if y[0] != 7 || y[1] != 9 {
		t.Fatalf("AXPY = %v", y)
	}
	Scale(0.5, y)
	if y[0] != 3.5 || y[1] != 4.5 {
		t.Fatalf("Scale = %v", y)
	}
}

func TestCheckDims(t *testing.T) {
	if err := CheckDims([]float32{1}, []float32{1, 2}); err == nil {
		t.Fatal("expected dimension mismatch")
	}
	if err := CheckDims([]float32{1, 2}, []float32{3, 4}); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestClone(t *testing.T) {
	v := []float32{1, 2, 3}
	c := Clone(v)
	c[0] = 9
	if v[0] != 1 {
		t.Fatal("Clone must not alias")
	}
}
