package vec

import (
	"math"
	"math/rand"
	"testing"
)

func randData(rng *rand.Rand, n, d int) []float32 {
	out := make([]float32, n*d)
	for i := range out {
		out[i] = float32(rng.NormFloat64())
	}
	return out
}

func sameBits(a, b float32) bool {
	return math.Float32bits(a) == math.Float32bits(b)
}

func relClose(a, b float32, tol float64) bool {
	da, db := float64(a), float64(b)
	diff := math.Abs(da - db)
	scale := math.Max(math.Abs(da), math.Abs(db))
	if scale < 1 {
		scale = 1
	}
	return diff <= tol*scale
}

// exactMetrics reproduce the scalar distance bit for bit through every
// scorer path; approxMetrics (cached-state reformulations) are held to
// 1e-5 relative.
var exactMetrics = []Metric{L2, InnerProduct, L1, Linf, Hamming}

func checkScore(t *testing.T, m Metric, got, want float32, path string) {
	t.Helper()
	if m == Cosine {
		if !relClose(got, want, 1e-5) {
			t.Fatalf("%s metric %v: got %v want %v", path, m, got, want)
		}
		return
	}
	if !sameBits(got, want) {
		t.Fatalf("%s metric %v: got %v (bits %x) want %v (bits %x)",
			path, m, got, math.Float32bits(got), want, math.Float32bits(want))
	}
}

// TestScorerMatchesScalar is the core property test: for every metric,
// ScoreAt / ScoreBlock / ScoreIDs agree with the scalar DistanceFunc on
// random data — bit-identically for L2/IP/L1/Linf/Hamming, within 1e-5
// relative for cosine.
func TestScorerMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, d := range []int{1, 3, 7, 32, 65} {
		n := 103
		data := randData(rng, n, d)
		for _, m := range append(append([]Metric{}, exactMetrics...), Cosine) {
			sc, err := NewScorer(m, data, n, d)
			if err != nil {
				t.Fatalf("NewScorer(%v): %v", m, err)
			}
			fn := Distance(m)
			q := randData(rng, 1, d)
			b := sc.Bind(q)

			out := make([]float32, n)
			b.ScoreBlock(0, n, out)
			for i := 0; i < n; i++ {
				want := fn(q, data[i*d:(i+1)*d])
				checkScore(t, m, out[i], want, "ScoreBlock")
				checkScore(t, m, b.ScoreAt(i), want, "ScoreAt")
			}

			// Gather path over a shuffled id subset.
			ids := make([]int32, 0, n)
			for _, i := range rng.Perm(n)[:n/2+1] {
				ids = append(ids, int32(i))
			}
			got := make([]float32, len(ids))
			b.ScoreIDs(ids, got)
			for o, id := range ids {
				want := fn(q, data[int(id)*d:(int(id)+1)*d])
				checkScore(t, m, got[o], want, "ScoreIDs")
			}

			// Row-row path.
			for trial := 0; trial < 16; trial++ {
				i, j := rng.Intn(n), rng.Intn(n)
				want := fn(data[i*d:(i+1)*d], data[j*d:(j+1)*d])
				checkScore(t, m, sc.ScoreRows(i, j), want, "ScoreRows")
			}
		}
	}
}

// TestScorerBlockInvariance verifies that chunking a scan into blocks
// of any size yields bit-identical scores: the kernels preserve the
// per-row accumulation order, so block boundaries cannot leak into the
// results.
func TestScorerBlockInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n, d := 2053, 24
	data := randData(rng, n, d)
	q := randData(rng, 1, d)
	for _, m := range []Metric{L2, InnerProduct, Cosine, L1, Linf, Hamming} {
		sc, err := NewScorer(m, data, n, d)
		if err != nil {
			t.Fatal(err)
		}
		b := sc.Bind(q)
		ref := make([]float32, n)
		b.ScoreBlock(0, n, ref)
		for _, bs := range []int{1, 7, 64, 1024} {
			out := make([]float32, bs)
			for lo := 0; lo < n; lo += bs {
				hi := lo + bs
				if hi > n {
					hi = n
				}
				b.ScoreBlock(lo, hi, out)
				for i := lo; i < hi; i++ {
					if !sameBits(out[i-lo], ref[i]) {
						t.Fatalf("metric %v block %d row %d: %v != %v", m, bs, i, out[i-lo], ref[i])
					}
				}
			}
		}
	}
}

// TestCosineZeroVectors pins the zero-vector contract: a zero query or
// zero row scores exactly 1 (maximally dissimilar), never NaN, on both
// the scalar and every scorer path.
func TestCosineZeroVectors(t *testing.T) {
	d := 8
	zero := make([]float32, d)
	one := make([]float32, d)
	for i := range one {
		one[i] = 1
	}
	if got := CosineDistance(zero, one); got != 1 {
		t.Fatalf("CosineDistance(0, v) = %v, want 1", got)
	}
	if got := CosineDistance(one, zero); got != 1 {
		t.Fatalf("CosineDistance(v, 0) = %v, want 1", got)
	}
	if got := CosineDistance(zero, zero); got != 1 {
		t.Fatalf("CosineDistance(0, 0) = %v, want 1", got)
	}

	// Rows 0 and 2 are zero vectors.
	data := append(append(append([]float32{}, zero...), one...), zero...)
	sc, err := NewScorer(Cosine, data, 3, d)
	if err != nil {
		t.Fatal(err)
	}
	for qi, q := range [][]float32{zero, one} {
		b := sc.Bind(q)
		out := make([]float32, 3)
		b.ScoreBlock(0, 3, out)
		for i := 0; i < 3; i++ {
			want := CosineDistance(q, data[i*d:(i+1)*d])
			if math.IsNaN(float64(out[i])) {
				t.Fatalf("ScoreBlock produced NaN at row %d", i)
			}
			if qi == 0 || i != 1 {
				// A zero vector on either side scores exactly 1 on
				// every path.
				if want != 1 || out[i] != 1 || b.ScoreAt(i) != 1 {
					t.Fatalf("zero-vector row %d: block %v at %v want exactly 1", i, out[i], b.ScoreAt(i))
				}
				continue
			}
			// Nonzero pair: cached-norm reformulation, 1e-5 contract.
			checkScore(t, Cosine, out[i], want, "ScoreBlock")
			checkScore(t, Cosine, b.ScoreAt(i), want, "ScoreAt")
		}
	}
	for _, pair := range [][2]int{{0, 1}, {1, 2}, {0, 2}} {
		if got := sc.ScoreRows(pair[0], pair[1]); got != 1 {
			t.Fatalf("ScoreRows(%d,%d) = %v, want 1", pair[0], pair[1], got)
		}
	}
	k := BindQuery(Cosine, zero)
	if got := k.Score(one); got != 1 {
		t.Fatalf("QueryKernel zero query = %v, want 1", got)
	}
}

// TestMahalanobisScorer checks the Cholesky pre-transform path against
// the exact quadratic form on a positive-definite matrix, and the
// scalar fallback (bit-identical) when the matrix is not factorable.
func TestMahalanobisScorer(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	d, n := 6, 61
	// M = A·Aᵀ + I is symmetric positive definite.
	a := randData(rng, d, d)
	m := make([][]float32, d)
	for i := range m {
		m[i] = make([]float32, d)
		for j := range m[i] {
			var s float64
			for k := 0; k < d; k++ {
				s += float64(a[i*d+k]) * float64(a[j*d+k])
			}
			if i == j {
				s++
			}
			m[i][j] = float32(s)
		}
	}
	mh, err := NewMahalanobis(m)
	if err != nil {
		t.Fatal(err)
	}
	data := randData(rng, n, d)
	sc, err := NewMahalanobisScorer(mh, data, n, d)
	if err != nil {
		t.Fatal(err)
	}
	if sc.chol == nil {
		t.Fatal("positive definite matrix did not factor")
	}
	q := randData(rng, 1, d)
	b := sc.Bind(q)
	out := make([]float32, n)
	b.ScoreBlock(0, n, out)
	for i := 0; i < n; i++ {
		want := mh.Distance(q, data[i*d:(i+1)*d])
		if !relClose(out[i], want, 1e-5) || !relClose(b.ScoreAt(i), want, 1e-5) {
			t.Fatalf("row %d: block %v at %v want %v", i, out[i], b.ScoreAt(i), want)
		}
	}
	for trial := 0; trial < 16; trial++ {
		i, j := rng.Intn(n), rng.Intn(n)
		want := mh.Distance(data[i*d:(i+1)*d], data[j*d:(j+1)*d])
		if !relClose(sc.ScoreRows(i, j), want, 1e-5) {
			t.Fatalf("ScoreRows(%d,%d) = %v want %v", i, j, sc.ScoreRows(i, j), want)
		}
	}

	// Indefinite matrix: Cholesky fails, scoring falls back to the
	// exact scalar form.
	bad := [][]float32{{0, 0}, {0, 1}}
	mhBad, err := NewMahalanobis(bad)
	if err != nil {
		t.Fatal(err)
	}
	data2 := randData(rng, 10, 2)
	sc2, err := NewMahalanobisScorer(mhBad, data2, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sc2.chol != nil {
		t.Fatal("non-PD matrix unexpectedly factored")
	}
	q2 := randData(rng, 1, 2)
	b2 := sc2.Bind(q2)
	out2 := make([]float32, 10)
	b2.ScoreBlock(0, 10, out2)
	for i := 0; i < 10; i++ {
		want := mhBad.Distance(q2, data2[i*2:(i+1)*2])
		if !sameBits(out2[i], want) {
			t.Fatalf("fallback row %d: %v want %v", i, out2[i], want)
		}
	}
}

// TestScorerExtendRefresh verifies incremental maintenance: extending
// row by row (the insert path) and refreshing after in-place updates
// both leave the scorer identical to a fresh build.
func TestScorerExtendRefresh(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	d, n := 16, 50
	full := randData(rng, n, d)
	for _, m := range []Metric{L2, Cosine} {
		grown, err := NewScorer(m, nil, 0, d)
		if err != nil {
			t.Fatal(err)
		}
		var data []float32
		for i := 0; i < n; i++ {
			data = append(data, full[i*d:(i+1)*d]...)
			grown.Extend(data, i+1)
		}
		fresh, err := NewScorer(m, data, n, d)
		if err != nil {
			t.Fatal(err)
		}
		q := randData(rng, 1, d)
		got := make([]float32, n)
		want := make([]float32, n)
		grown.Bind(q).ScoreBlock(0, n, got)
		fresh.Bind(q).ScoreBlock(0, n, want)
		for i := range got {
			if !sameBits(got[i], want[i]) {
				t.Fatalf("metric %v extend row %d: %v != %v", m, i, got[i], want[i])
			}
		}

		// In-place overwrite + Refresh.
		copy(data[7*d:8*d], randData(rng, 1, d))
		grown.Refresh(7)
		fresh2, _ := NewScorer(m, data, n, d)
		g := grown.Bind(q).ScoreAt(7)
		w := fresh2.Bind(q).ScoreAt(7)
		if !sameBits(g, w) {
			t.Fatalf("metric %v refresh: %v != %v", m, g, w)
		}

		// Reset drops all rows; a later Extend rebuilds state.
		grown.Reset()
		if grown.Rows() != 0 {
			t.Fatalf("Rows after Reset = %d", grown.Rows())
		}
		grown.Extend(data, n)
		if got := grown.Bind(q).ScoreAt(7); !sameBits(got, w) {
			t.Fatalf("metric %v post-reset extend: %v != %v", m, got, w)
		}
	}
}

// TestMetricOf pins the DistanceFunc -> Metric resolution used by
// ScorerFor: canonical functions are recognized, wrappers are not.
func TestMetricOf(t *testing.T) {
	cases := []struct {
		fn DistanceFunc
		m  Metric
	}{
		{SquaredL2, L2},
		{NegInnerProduct, InnerProduct},
		{CosineDistance, Cosine},
		{ManhattanDistance, L1},
		{ChebyshevDistance, Linf},
		{HammingDistance, Hamming},
	}
	for _, c := range cases {
		m, ok := MetricOf(c.fn)
		if !ok || m != c.m {
			t.Fatalf("MetricOf: got (%v, %v), want (%v, true)", m, ok, c.m)
		}
	}
	wrapped := func(a, b []float32) float32 { return SquaredL2(a, b) }
	if _, ok := MetricOf(wrapped); ok {
		t.Fatal("wrapped function should not be recognized")
	}
	if _, ok := MetricOf(nil); ok {
		t.Fatal("nil function should not be recognized")
	}
}

// TestFuncScorer verifies the opaque-function path is bit-identical to
// calling the function per row, and that ScorerFor routes canonical
// functions to the specialized scorer.
func TestFuncScorer(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	n, d := 40, 9
	data := randData(rng, n, d)
	weird := func(a, b []float32) float32 { return SquaredL2(a, b) + 1 }
	sc := ScorerFor(weird, data, n, d)
	if sc.Metric() != Metric(-1) {
		t.Fatalf("opaque scorer metric = %v", sc.Metric())
	}
	q := randData(rng, 1, d)
	out := make([]float32, n)
	sc.Bind(q).ScoreBlock(0, n, out)
	for i := 0; i < n; i++ {
		if !sameBits(out[i], weird(q, data[i*d:(i+1)*d])) {
			t.Fatalf("func scorer row %d mismatch", i)
		}
	}
	if fast := ScorerFor(CosineDistance, data, n, d); fast.Metric() != Cosine {
		t.Fatalf("ScorerFor(CosineDistance) metric = %v", fast.Metric())
	}
}

// TestQueryKernel checks the streamed-vector kernel against the scalar
// functions for every basic metric.
func TestQueryKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	d := 12
	q := randData(rng, 1, d)
	v := randData(rng, 1, d)
	for _, m := range []Metric{L2, InnerProduct, Cosine, L1, Linf, Hamming} {
		k := BindQuery(m, q)
		want := Distance(m)(q, v)
		got := k.Score(v)
		checkScore(t, m, got, want, "QueryKernel")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("BindQuery(Mahalanobis) should panic")
		}
	}()
	BindQuery(Mahalanobis, q)
}

// TestScorerErrors covers constructor validation.
func TestScorerErrors(t *testing.T) {
	if _, err := NewScorer(Mahalanobis, nil, 0, 4); err == nil {
		t.Fatal("Mahalanobis via NewScorer should error")
	}
	if _, err := NewScorer(L2, make([]float32, 4), 2, 4); err == nil {
		t.Fatal("short data should error")
	}
	if _, err := NewScorer(L2, nil, 0, 0); err == nil {
		t.Fatal("zero dim should error")
	}
	if _, err := NewScorer(Metric(99), nil, 0, 4); err == nil {
		t.Fatal("unknown metric should error")
	}
	if _, err := NewMahalanobisScorer(nil, nil, 0, 2); err == nil {
		t.Fatal("nil matrix should error")
	}
}
