package vec

import "math/rand"

// newTestRNG centralizes seeded RNG construction for tests in this
// package.
func newTestRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
