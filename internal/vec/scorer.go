package vec

// The batched scoring engine. Every hot scan in the system used to pay
// an indirect DistanceFunc call per candidate, and metrics with
// per-vector state (the norms of cosine, the L-transform of
// Mahalanobis) recomputed that state on every comparison. A Scorer is
// built once per (metric, dataset): it precomputes per-row state —
// inverse norms for cosine, the Cholesky pre-transform for Mahalanobis
// — and scores candidates through metric-specialized block kernels
// that process two rows per pass, sharing the query loads (the
// portable analog of the SIMD distance kernels of Section 2.3).
//
// Numeric contract: for L2, inner product, L1, Linf, and Hamming every
// Scorer path reproduces the scalar DistanceFunc bit for bit (the
// kernels keep each row's accumulation order identical to the scalar
// functions). Cosine and Mahalanobis use cached per-row state, so
// their scores agree with the scalar functions only to ~1e-7 relative
// error; callers that mix paths must tolerate that (the property tests
// pin 1e-5).
//
// Zero-vector contract (cosine): a zero row or zero query caches an
// inverse norm of 0, so every score against it is exactly 1 —
// matching CosineDistance, which defines zero vectors as maximally
// dissimilar instead of producing NaN.

import (
	"fmt"
	"math"
	"reflect"
)

// Scorer scores queries against the rows of a row-major dataset with
// per-row state precomputed at construction. Methods that score are
// safe for concurrent use; Extend, Refresh, and Reset require the same
// external synchronization as writes to the underlying data.
type Scorer struct {
	metric Metric
	dim    int
	n      int
	data   []float32

	// invNorm caches 1/||row|| for cosine (0 for zero rows).
	invNorm []float32

	// Mahalanobis state: mh is the scalar fallback; when the matrix
	// admits a Cholesky factorization M = L·Lᵀ, chol holds T = Lᵀ
	// (upper triangular, row-major) and trows the transformed rows, so
	// scoring reduces to SquaredL2 in the transformed space.
	mh    *Mahalanobis2
	chol  []float32
	trows []float32

	// fn, when set, makes this an opaque per-row scorer (metric is -1).
	fn DistanceFunc
}

// NewScorer builds a scorer for a basic metric over n row-major
// vectors of dimension d. n may be 0 (grow later via Extend).
// Mahalanobis carries state and must use NewMahalanobisScorer.
func NewScorer(m Metric, data []float32, n, d int) (*Scorer, error) {
	if d <= 0 {
		return nil, fmt.Errorf("vec: scorer dimension must be positive")
	}
	if n < 0 || len(data) < n*d {
		return nil, fmt.Errorf("vec: scorer data %d shorter than n*d %d", len(data), n*d)
	}
	switch m {
	case L2, InnerProduct, Cosine, L1, Linf, Hamming:
	case Mahalanobis:
		return nil, fmt.Errorf("vec: Mahalanobis scorer requires NewMahalanobisScorer")
	default:
		return nil, fmt.Errorf("vec: unknown metric %v", m)
	}
	s := &Scorer{metric: m, dim: d, data: data}
	s.extendState(data, n)
	return s, nil
}

// NewMahalanobisScorer builds a scorer for a learned quadratic-form
// distance. When M is positive definite the rows are pre-transformed
// by the Cholesky factor (so each score is one SquaredL2 instead of a
// d×d quadratic form); otherwise scoring falls back to the exact
// scalar form per row.
func NewMahalanobisScorer(mh *Mahalanobis2, data []float32, n, d int) (*Scorer, error) {
	if mh == nil {
		return nil, fmt.Errorf("vec: nil Mahalanobis matrix")
	}
	if d != mh.Dim() {
		return nil, fmt.Errorf("vec: scorer dim %d, matrix dim %d", d, mh.Dim())
	}
	if n < 0 || len(data) < n*d {
		return nil, fmt.Errorf("vec: scorer data %d shorter than n*d %d", len(data), n*d)
	}
	s := &Scorer{metric: Mahalanobis, dim: d, data: data, mh: mh, chol: cholUpper(mh.m, d)}
	s.extendState(data, n)
	return s, nil
}

// NewFuncScorer wraps an opaque DistanceFunc: no per-row state, every
// score is one scalar call. It exists so callers can route every scan
// through the Scorer API and still accept user-supplied distances;
// results are bit-identical to calling fn per row.
func NewFuncScorer(fn DistanceFunc, data []float32, n, d int) *Scorer {
	return &Scorer{metric: Metric(-1), dim: d, n: n, data: data, fn: fn}
}

// ScorerFor resolves fn to a metric-specialized scorer when fn is one
// of this package's canonical distance functions, and falls back to an
// opaque per-row scorer otherwise. It is the bridge for APIs that
// historically accepted a bare DistanceFunc.
func ScorerFor(fn DistanceFunc, data []float32, n, d int) *Scorer {
	if m, ok := MetricOf(fn); ok {
		s, err := NewScorer(m, data, n, d)
		if err == nil {
			return s
		}
	}
	return NewFuncScorer(fn, data, n, d)
}

// MetricOf reports which basic metric fn implements, matching against
// this package's canonical functions by identity. Wrapped or
// user-supplied functions are not recognized.
func MetricOf(fn DistanceFunc) (Metric, bool) {
	if fn == nil {
		return 0, false
	}
	switch reflect.ValueOf(fn).Pointer() {
	case reflect.ValueOf(SquaredL2).Pointer():
		return L2, true
	case reflect.ValueOf(NegInnerProduct).Pointer():
		return InnerProduct, true
	case reflect.ValueOf(CosineDistance).Pointer():
		return Cosine, true
	case reflect.ValueOf(ManhattanDistance).Pointer():
		return L1, true
	case reflect.ValueOf(ChebyshevDistance).Pointer():
		return Linf, true
	case reflect.ValueOf(HammingDistance).Pointer():
		return Hamming, true
	}
	return 0, false
}

// Metric returns the metric this scorer specializes (-1 for opaque
// func scorers).
func (s *Scorer) Metric() Metric { return s.metric }

// Dim returns the vector dimensionality.
func (s *Scorer) Dim() int { return s.dim }

// Rows returns the number of scoreable rows.
func (s *Scorer) Rows() int { return s.n }

// Data returns the backing row-major matrix (first Rows()*Dim()
// entries are valid). Callers must not mutate it without Refresh.
func (s *Scorer) Data() []float32 { return s.data }

// Extend re-points the scorer at the (possibly reallocated) backing
// array and computes per-row state for rows [Rows(), n) — the
// incremental maintenance hook for append-style inserts. n < Rows()
// truncates.
func (s *Scorer) Extend(data []float32, n int) {
	if len(data) < n*s.dim {
		panic(fmt.Sprintf("vec: Extend data %d shorter than n*d %d", len(data), n*s.dim))
	}
	s.extendState(data, n)
}

func (s *Scorer) extendState(data []float32, n int) {
	old := s.n
	s.data = data
	s.n = n
	d := s.dim
	switch {
	case s.fn != nil:
	case s.metric == Cosine:
		if n <= old {
			s.invNorm = s.invNorm[:n]
			break
		}
		for len(s.invNorm) < n {
			i := len(s.invNorm)
			s.invNorm = append(s.invNorm, invNormOf(data[i*d:(i+1)*d]))
		}
	case s.metric == Mahalanobis && s.chol != nil:
		if n <= old {
			s.trows = s.trows[:n*d]
			break
		}
		if cap(s.trows) < n*d {
			grown := make([]float32, old*d, n*d)
			copy(grown, s.trows)
			s.trows = grown
		}
		s.trows = s.trows[:n*d]
		for i := old; i < n; i++ {
			s.transform(data[i*d:(i+1)*d], s.trows[i*d:(i+1)*d])
		}
	}
}

// View returns an immutable snapshot of the scorer pinned at the
// current row count: a shallow copy whose slice headers keep pointing
// at today's backing arrays. Appending to the original via Extend
// never changes what the view scores (appends land past the pinned
// prefix, or reallocate and leave the old arrays behind), so a view
// can be scored against lock-free while the original keeps growing.
// In-place mutation (Refresh) is NOT isolated — callers that update
// rows in place must copy the data and build a fresh scorer instead.
func (s *Scorer) View() *Scorer {
	v := *s
	return &v
}

// Refresh recomputes row id's cached state after an in-place
// overwrite of the underlying vector.
func (s *Scorer) Refresh(id int) {
	if id < 0 || id >= s.n {
		panic(fmt.Sprintf("vec: Refresh id %d out of range [0,%d)", id, s.n))
	}
	d := s.dim
	switch {
	case s.metric == Cosine:
		s.invNorm[id] = invNormOf(s.data[id*d : (id+1)*d])
	case s.metric == Mahalanobis && s.chol != nil:
		s.transform(s.data[id*d:(id+1)*d], s.trows[id*d:(id+1)*d])
	}
}

// Reset drops all rows (caches keep their capacity), so a memtable can
// be sealed and refilled without reallocating the scorer.
func (s *Scorer) Reset() { s.extendState(s.data[:0], 0) }

// invNormOf returns 1/||v|| (0 for the zero vector), the cached
// cosine row state.
func invNormOf(v []float32) float32 {
	nn := Dot(v, v)
	if nn == 0 {
		return 0
	}
	return float32(1 / math.Sqrt(float64(nn)))
}

// ScoreAt scores row id against q. One-shot convenience; loops should
// Bind once and use the bound scorer.
func (s *Scorer) ScoreAt(q []float32, id int) float32 { return s.Bind(q).ScoreAt(id) }

// ScoreBlock scores the contiguous rows [lo, hi) against q into
// out[:hi-lo]. One-shot convenience over Bind.
func (s *Scorer) ScoreBlock(q []float32, lo, hi int, out []float32) {
	s.Bind(q).ScoreBlock(lo, hi, out)
}

// ScoreRows scores two stored rows against each other using cached
// state on both sides (graph edge pruning: robust-prune compares
// candidate pairs, not query-row pairs).
func (s *Scorer) ScoreRows(i, j int) float32 {
	d := s.dim
	ri := s.data[i*d : (i+1)*d]
	rj := s.data[j*d : (j+1)*d]
	switch {
	case s.fn != nil:
		return s.fn(ri, rj)
	case s.metric == L2:
		return SquaredL2(ri, rj)
	case s.metric == InnerProduct:
		return -Dot(ri, rj)
	case s.metric == Cosine:
		return 1 - Dot(ri, rj)*s.invNorm[i]*s.invNorm[j]
	case s.metric == L1:
		return ManhattanDistance(ri, rj)
	case s.metric == Linf:
		return ChebyshevDistance(ri, rj)
	case s.metric == Hamming:
		return HammingDistance(ri, rj)
	case s.chol != nil:
		return SquaredL2(s.trows[i*d:(i+1)*d], s.trows[j*d:(j+1)*d])
	default:
		return s.mh.Distance(ri, rj)
	}
}

// Bound is a scorer with per-query state resolved once (the query's
// inverse norm for cosine, its pre-transform for Mahalanobis), so
// gather-style ScoreAt calls from graph traversals pay no per-call
// setup. A Bound is a value; copying it is cheap and safe.
type Bound struct {
	s    *Scorer
	q    []float32
	qInv float32   // cosine: 1/||q||, 0 for a zero query
	tq   []float32 // Mahalanobis: Lᵀq
}

// Bind precomputes the per-query scoring state for q.
func (s *Scorer) Bind(q []float32) Bound {
	b := Bound{s: s, q: q}
	switch {
	case s.fn != nil:
	case s.metric == Cosine:
		b.qInv = invNormOf(q)
	case s.metric == Mahalanobis && s.chol != nil:
		b.tq = make([]float32, s.dim)
		s.transform(q, b.tq)
	}
	return b
}

// ScoreAt returns the distance from the bound query to row id.
func (b Bound) ScoreAt(id int) float32 {
	s := b.s
	d := s.dim
	row := s.data[id*d : (id+1)*d]
	switch {
	case s.fn != nil:
		return s.fn(b.q, row)
	case s.metric == L2:
		return SquaredL2(b.q, row)
	case s.metric == InnerProduct:
		return -Dot(b.q, row)
	case s.metric == Cosine:
		return 1 - Dot(b.q, row)*s.invNorm[id]*b.qInv
	case s.metric == L1:
		return ManhattanDistance(b.q, row)
	case s.metric == Linf:
		return ChebyshevDistance(b.q, row)
	case s.metric == Hamming:
		return HammingDistance(b.q, row)
	case s.chol != nil:
		return SquaredL2(b.tq, s.trows[id*d:(id+1)*d])
	default:
		return s.mh.Distance(b.q, row)
	}
}

// ScoreBlock scores the contiguous rows [lo, hi) into out[:hi-lo].
// The per-row accumulation order matches the scalar kernels, so
// results are independent of how a scan is chunked into blocks.
func (b Bound) ScoreBlock(lo, hi int, out []float32) {
	s := b.s
	d := s.dim
	data := s.data
	switch {
	case s.metric == L2 && s.fn == nil:
		o := 0
		i := lo
		for ; i+2 <= hi; i, o = i+2, o+2 {
			out[o], out[o+1] = l2Pair(b.q, data[i*d:(i+1)*d], data[(i+1)*d:(i+2)*d])
		}
		if i < hi {
			out[o] = SquaredL2(b.q, data[i*d:(i+1)*d])
		}
	case s.metric == InnerProduct && s.fn == nil:
		o := 0
		i := lo
		for ; i+2 <= hi; i, o = i+2, o+2 {
			dp0, dp1 := dotPair(b.q, data[i*d:(i+1)*d], data[(i+1)*d:(i+2)*d])
			out[o], out[o+1] = -dp0, -dp1
		}
		if i < hi {
			out[o] = -Dot(b.q, data[i*d:(i+1)*d])
		}
	case s.metric == Cosine && s.fn == nil:
		o := 0
		i := lo
		for ; i+2 <= hi; i, o = i+2, o+2 {
			dp0, dp1 := dotPair(b.q, data[i*d:(i+1)*d], data[(i+1)*d:(i+2)*d])
			out[o] = 1 - dp0*s.invNorm[i]*b.qInv
			out[o+1] = 1 - dp1*s.invNorm[i+1]*b.qInv
		}
		if i < hi {
			out[o] = 1 - Dot(b.q, data[i*d:(i+1)*d])*s.invNorm[i]*b.qInv
		}
	case s.metric == Mahalanobis && s.chol != nil:
		trows := s.trows
		o := 0
		i := lo
		for ; i+2 <= hi; i, o = i+2, o+2 {
			out[o], out[o+1] = l2Pair(b.tq, trows[i*d:(i+1)*d], trows[(i+1)*d:(i+2)*d])
		}
		if i < hi {
			out[o] = SquaredL2(b.tq, trows[i*d:(i+1)*d])
		}
	default:
		// L1/Linf/Hamming have no per-row state and opaque funcs cannot
		// be fused; the block still amortizes dispatch to one direct
		// call per row.
		for i, o := lo, 0; i < hi; i, o = i+1, o+1 {
			out[o] = b.ScoreAt(i)
		}
	}
}

// ScoreIDs scores a gather list: out[i] = dist(q, row ids[i]). Used by
// scans whose candidates are not contiguous (inverted lists, filtered
// scans, memtable rows surviving generation checks).
func (b Bound) ScoreIDs(ids []int32, out []float32) {
	s := b.s
	d := s.dim
	data := s.data
	row := func(o int) []float32 {
		i := int(ids[o])
		return data[i*d : (i+1)*d]
	}
	switch {
	case s.metric == L2 && s.fn == nil:
		o := 0
		for ; o+2 <= len(ids); o += 2 {
			out[o], out[o+1] = l2Pair(b.q, row(o), row(o+1))
		}
		if o < len(ids) {
			out[o] = SquaredL2(b.q, row(o))
		}
	case s.metric == InnerProduct && s.fn == nil:
		o := 0
		for ; o+2 <= len(ids); o += 2 {
			dp0, dp1 := dotPair(b.q, row(o), row(o+1))
			out[o], out[o+1] = -dp0, -dp1
		}
		if o < len(ids) {
			out[o] = -Dot(b.q, row(o))
		}
	case s.metric == Cosine && s.fn == nil:
		inv := func(o int) float32 { return s.invNorm[int(ids[o])] }
		o := 0
		for ; o+2 <= len(ids); o += 2 {
			dp0, dp1 := dotPair(b.q, row(o), row(o+1))
			out[o] = 1 - dp0*inv(o)*b.qInv
			out[o+1] = 1 - dp1*inv(o+1)*b.qInv
		}
		if o < len(ids) {
			out[o] = 1 - Dot(b.q, row(o))*inv(o)*b.qInv
		}
	default:
		for o, id := range ids {
			out[o] = b.ScoreAt(int(id))
		}
	}
}

// dotPair computes Dot(q, r0) and Dot(q, r1) in one pass, sharing the
// query loads. Each row keeps Dot's exact accumulation order (four
// stride-4 accumulators, tail into the first): the 8-wide main loop
// feeds each accumulator the same element sequence as the scalar code,
// just with less loop overhead, so the results are bit-identical to
// two scalar calls.
func dotPair(q, r0, r1 []float32) (float32, float32) {
	n := len(q)
	r0 = r0[:n]
	r1 = r1[:n]
	var a0, a1, a2, a3 float32
	var b0, b1, b2, b3 float32
	i := 0
	for ; i+8 <= n; i += 8 {
		a0 += q[i] * r0[i]
		a1 += q[i+1] * r0[i+1]
		a2 += q[i+2] * r0[i+2]
		a3 += q[i+3] * r0[i+3]
		a0 += q[i+4] * r0[i+4]
		a1 += q[i+5] * r0[i+5]
		a2 += q[i+6] * r0[i+6]
		a3 += q[i+7] * r0[i+7]
		b0 += q[i] * r1[i]
		b1 += q[i+1] * r1[i+1]
		b2 += q[i+2] * r1[i+2]
		b3 += q[i+3] * r1[i+3]
		b0 += q[i+4] * r1[i+4]
		b1 += q[i+5] * r1[i+5]
		b2 += q[i+6] * r1[i+6]
		b3 += q[i+7] * r1[i+7]
	}
	for ; i+4 <= n; i += 4 {
		q0, q1, q2, q3 := q[i], q[i+1], q[i+2], q[i+3]
		a0 += q0 * r0[i]
		a1 += q1 * r0[i+1]
		a2 += q2 * r0[i+2]
		a3 += q3 * r0[i+3]
		b0 += q0 * r1[i]
		b1 += q1 * r1[i+1]
		b2 += q2 * r1[i+2]
		b3 += q3 * r1[i+3]
	}
	for ; i < n; i++ {
		a0 += q[i] * r0[i]
		b0 += q[i] * r1[i]
	}
	return a0 + a1 + a2 + a3, b0 + b1 + b2 + b3
}

// l2Pair computes SquaredL2(q, r0) and SquaredL2(q, r1) in one pass,
// bit-identical to two scalar calls (same per-accumulator order; see
// dotPair for the 8-wide unrolling argument).
func l2Pair(q, r0, r1 []float32) (float32, float32) {
	n := len(q)
	r0 = r0[:n]
	r1 = r1[:n]
	var a0, a1, a2, a3 float32
	var b0, b1, b2, b3 float32
	i := 0
	for ; i+8 <= n; i += 8 {
		e0 := q[i] - r0[i]
		e1 := q[i+1] - r0[i+1]
		e2 := q[i+2] - r0[i+2]
		e3 := q[i+3] - r0[i+3]
		a0 += e0 * e0
		a1 += e1 * e1
		a2 += e2 * e2
		a3 += e3 * e3
		e0 = q[i+4] - r0[i+4]
		e1 = q[i+5] - r0[i+5]
		e2 = q[i+6] - r0[i+6]
		e3 = q[i+7] - r0[i+7]
		a0 += e0 * e0
		a1 += e1 * e1
		a2 += e2 * e2
		a3 += e3 * e3
		f0 := q[i] - r1[i]
		f1 := q[i+1] - r1[i+1]
		f2 := q[i+2] - r1[i+2]
		f3 := q[i+3] - r1[i+3]
		b0 += f0 * f0
		b1 += f1 * f1
		b2 += f2 * f2
		b3 += f3 * f3
		f0 = q[i+4] - r1[i+4]
		f1 = q[i+5] - r1[i+5]
		f2 = q[i+6] - r1[i+6]
		f3 = q[i+7] - r1[i+7]
		b0 += f0 * f0
		b1 += f1 * f1
		b2 += f2 * f2
		b3 += f3 * f3
	}
	for ; i+4 <= n; i += 4 {
		q0, q1, q2, q3 := q[i], q[i+1], q[i+2], q[i+3]
		e0 := q0 - r0[i]
		e1 := q1 - r0[i+1]
		e2 := q2 - r0[i+2]
		e3 := q3 - r0[i+3]
		a0 += e0 * e0
		a1 += e1 * e1
		a2 += e2 * e2
		a3 += e3 * e3
		f0 := q0 - r1[i]
		f1 := q1 - r1[i+1]
		f2 := q2 - r1[i+2]
		f3 := q3 - r1[i+3]
		b0 += f0 * f0
		b1 += f1 * f1
		b2 += f2 * f2
		b3 += f3 * f3
	}
	for ; i < n; i++ {
		e := q[i] - r0[i]
		a0 += e * e
		f := q[i] - r1[i]
		b0 += f * f
	}
	return a0 + a1 + a2 + a3, b0 + b1 + b2 + b3
}

// transform computes dst = Lᵀ·v (the Cholesky pre-transform), with
// float64 accumulation so transformed-space distances stay within
// ~1e-6 relative of the exact quadratic form.
func (s *Scorer) transform(v, dst []float32) {
	d := s.dim
	for r := 0; r < d; r++ {
		row := s.chol[r*d : (r+1)*d]
		var acc float64
		for j := r; j < d; j++ {
			acc += float64(row[j]) * float64(v[j])
		}
		dst[r] = float32(acc)
	}
}

// cholUpper factors M = L·Lᵀ and returns T = Lᵀ (upper triangular,
// row-major), or nil when M is not positive definite — the caller
// then falls back to the exact quadratic form per row.
func cholUpper(m [][]float32, d int) []float32 {
	l := make([]float64, d*d)
	for i := 0; i < d; i++ {
		for j := 0; j <= i; j++ {
			sum := float64(m[i][j])
			for k := 0; k < j; k++ {
				sum -= l[i*d+k] * l[j*d+k]
			}
			if i == j {
				if sum <= 0 {
					return nil
				}
				l[i*d+i] = math.Sqrt(sum)
			} else {
				l[i*d+j] = sum / l[j*d+j]
			}
		}
	}
	t := make([]float32, d*d)
	for r := 0; r < d; r++ {
		for j := r; j < d; j++ {
			t[r*d+j] = float32(l[j*d+r])
		}
	}
	return t
}

// QueryKernel scores streamed vectors (disk records, posting entries)
// against a fixed query with the query-side state resolved once. It is
// the Bound analog for paths whose vectors are not resident rows.
type QueryKernel struct {
	m    Metric
	q    []float32
	qInv float32
}

// BindQuery prepares a kernel for a basic metric. Like Distance it
// panics for Mahalanobis, which carries matrix state.
func BindQuery(m Metric, q []float32) QueryKernel {
	k := QueryKernel{m: m, q: q}
	switch m {
	case Cosine:
		k.qInv = invNormOf(q)
	case Mahalanobis:
		panic("vec: Mahalanobis requires a Scorer")
	}
	return k
}

// Score returns the distance from the bound query to v. L2, inner
// product, L1, Linf, and Hamming are bit-identical to the scalar
// functions; cosine reuses the cached query norm (the row norm is
// still computed per call — streamed vectors have no cache to hit).
func (k QueryKernel) Score(v []float32) float32 {
	switch k.m {
	case L2:
		return SquaredL2(k.q, v)
	case InnerProduct:
		return -Dot(k.q, v)
	case Cosine:
		return 1 - Dot(k.q, v)*invNormOf(v)*k.qInv
	case L1:
		return ManhattanDistance(k.q, v)
	case Linf:
		return ChebyshevDistance(k.q, v)
	case Hamming:
		return HammingDistance(k.q, v)
	default:
		panic("vec: unknown metric " + k.m.String())
	}
}
