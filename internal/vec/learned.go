package vec

import (
	"fmt"
	"math"
)

// Learned scores and score selection (Section 2.1 / open problem 1).
//
// LearnDiagonalMetric is a lightweight metric-learning procedure in the
// spirit of relevance-component analysis: given pairs labeled
// similar/dissimilar it produces a diagonal Mahalanobis matrix whose
// per-dimension weights are the ratio of between-pair to within-pair
// scatter. SelectMetric automates "score selection" by measuring which
// candidate score best reproduces ground-truth neighborhoods.

// Pair is a training example for metric learning.
type Pair struct {
	A, B    []float32
	Similar bool
}

// LearnDiagonalMetric fits a diagonal Mahalanobis matrix from labeled
// pairs. For each dimension it computes the mean squared difference
// across similar pairs (within-scatter w) and dissimilar pairs
// (between-scatter b) and assigns weight b/(w+eps), so dimensions that
// separate dissimilar pairs while staying stable within similar pairs
// dominate the learned distance. Weights are normalized to mean 1.
func LearnDiagonalMetric(pairs []Pair, dim int) (*Mahalanobis2, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("vec: LearnDiagonalMetric dim=%d", dim)
	}
	within := make([]float64, dim)
	between := make([]float64, dim)
	var nw, nb int
	for _, p := range pairs {
		if len(p.A) != dim || len(p.B) != dim {
			return nil, fmt.Errorf("vec: pair dimension %d/%d, want %d", len(p.A), len(p.B), dim)
		}
		for i := 0; i < dim; i++ {
			d := float64(p.A[i] - p.B[i])
			if p.Similar {
				within[i] += d * d
			} else {
				between[i] += d * d
			}
		}
		if p.Similar {
			nw++
		} else {
			nb++
		}
	}
	if nw == 0 || nb == 0 {
		return nil, fmt.Errorf("vec: need both similar and dissimilar pairs (got %d/%d)", nw, nb)
	}
	const eps = 1e-9
	weights := make([]float64, dim)
	var sum float64
	for i := 0; i < dim; i++ {
		weights[i] = (between[i]/float64(nb) + eps) / (within[i]/float64(nw) + eps)
		sum += weights[i]
	}
	scale := float64(dim) / sum
	m := make([][]float32, dim)
	for i := range m {
		m[i] = make([]float32, dim)
		m[i][i] = float32(weights[i] * scale)
	}
	return NewMahalanobis(m)
}

// MetricCandidate pairs a name with a distance function for score
// selection.
type MetricCandidate struct {
	Name string
	Fn   DistanceFunc
}

// DefaultCandidates returns the basic scores of Section 2.1 that apply
// to arbitrary real vectors.
func DefaultCandidates() []MetricCandidate {
	return []MetricCandidate{
		{"l2", SquaredL2},
		{"ip", NegInnerProduct},
		{"cosine", CosineDistance},
		{"l1", ManhattanDistance},
		{"linf", ChebyshevDistance},
	}
}

// SelectMetric scores each candidate by how well its top-k neighborhood
// of every query reproduces the given ground-truth neighbor sets, and
// returns the name of the best candidate together with per-candidate
// mean recall. truth[i] lists the relevant base indices for queries[i].
func SelectMetric(cands []MetricCandidate, base, queries [][]float32, truth [][]int, k int) (string, map[string]float64) {
	if k <= 0 || len(queries) == 0 {
		return "", nil
	}
	recalls := make(map[string]float64, len(cands))
	bestName, bestRecall := "", math.Inf(-1)
	for _, c := range cands {
		var total float64
		for qi, q := range queries {
			got := bruteTopK(c.Fn, base, q, k)
			want := make(map[int]bool, len(truth[qi]))
			for _, id := range truth[qi] {
				want[id] = true
			}
			hits := 0
			for _, id := range got {
				if want[id] {
					hits++
				}
			}
			denom := len(truth[qi])
			if denom > k {
				denom = k
			}
			if denom > 0 {
				total += float64(hits) / float64(denom)
			}
		}
		r := total / float64(len(queries))
		recalls[c.Name] = r
		if r > bestRecall {
			bestRecall, bestName = r, c.Name
		}
	}
	return bestName, recalls
}

// bruteTopK returns the indices of the k smallest distances to q,
// using simple insertion into a bounded slice (k is small here).
func bruteTopK(fn DistanceFunc, base [][]float32, q []float32, k int) []int {
	type cand struct {
		id int
		d  float32
	}
	best := make([]cand, 0, k)
	for i, v := range base {
		d := fn(q, v)
		if len(best) < k {
			best = append(best, cand{i, d})
			for j := len(best) - 1; j > 0 && best[j].d < best[j-1].d; j-- {
				best[j], best[j-1] = best[j-1], best[j]
			}
			continue
		}
		if d >= best[k-1].d {
			continue
		}
		best[k-1] = cand{i, d}
		for j := k - 1; j > 0 && best[j].d < best[j-1].d; j-- {
			best[j], best[j-1] = best[j-1], best[j]
		}
	}
	ids := make([]int, len(best))
	for i, c := range best {
		ids[i] = c.id
	}
	return ids
}

// RelativeContrast quantifies the curse of dimensionality (Beyer et
// al.): for a query q it returns (Dmax - Dmin) / Dmin over the base
// set under fn. As dimensionality grows on i.i.d. data this ratio
// approaches zero and distance-based scores lose discriminative power.
func RelativeContrast(fn DistanceFunc, base [][]float32, q []float32) float64 {
	if len(base) == 0 {
		return 0
	}
	dmin, dmax := math.Inf(1), math.Inf(-1)
	for _, v := range base {
		d := float64(fn(q, v))
		if d < dmin {
			dmin = d
		}
		if d > dmax {
			dmax = d
		}
	}
	if dmin <= 0 {
		dmin = math.SmallestNonzeroFloat64
	}
	return (dmax - dmin) / dmin
}
