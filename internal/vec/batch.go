package vec

// Batched kernels. Computing many distances against a single query in
// one call keeps the query vector hot in registers/cache, which is the
// portable analog of the SIMD batching discussed in Section 2.3 of the
// paper (André et al., Johnson et al.).

// SquaredL2Batch writes SquaredL2(q, base[i*d:...]) into out[i] for a
// row-major base matrix of n vectors of dimension d. out must have
// length n.
func SquaredL2Batch(q []float32, base []float32, d int, out []float32) {
	n := len(out)
	for i := 0; i < n; i++ {
		out[i] = SquaredL2(q, base[i*d:(i+1)*d])
	}
}

// DotBatch writes Dot(q, base[i]) into out[i].
func DotBatch(q []float32, base []float32, d int, out []float32) {
	n := len(out)
	for i := 0; i < n; i++ {
		out[i] = Dot(q, base[i*d:(i+1)*d])
	}
}

// DistanceBatch evaluates fn(q, row) over a row-major matrix.
func DistanceBatch(fn DistanceFunc, q []float32, base []float32, d int, out []float32) {
	n := len(out)
	for i := 0; i < n; i++ {
		out[i] = fn(q, base[i*d:(i+1)*d])
	}
}

// Mean computes the centroid of the given vectors. All vectors must
// share the same dimension; Mean returns nil for an empty input.
func Mean(vs [][]float32) []float32 {
	if len(vs) == 0 {
		return nil
	}
	d := len(vs[0])
	m := make([]float32, d)
	for _, v := range vs {
		for i, x := range v {
			m[i] += x
		}
	}
	inv := 1 / float32(len(vs))
	for i := range m {
		m[i] *= inv
	}
	return m
}

// AXPY computes y += alpha*x in place.
func AXPY(alpha float32, x, y []float32) {
	for i := range y {
		y[i] += alpha * x[i]
	}
}

// Scale multiplies v by alpha in place.
func Scale(alpha float32, v []float32) {
	for i := range v {
		v[i] *= alpha
	}
}
