package vec

import (
	"math/rand"
	"testing"
)

// BenchmarkScoreBlock measures the raw block kernels against per-row
// scalar calls over the same data: 64k rows of 128-d, scored in
// 256-row blocks.
func BenchmarkScoreBlock(b *testing.B) {
	const n, d, block = 1 << 16, 128, 256
	rng := rand.New(rand.NewSource(1))
	data := make([]float32, n*d)
	for i := range data {
		data[i] = float32(rng.NormFloat64())
	}
	q := make([]float32, d)
	for i := range q {
		q[i] = float32(rng.NormFloat64())
	}
	rows := float64(n)
	for _, m := range []Metric{L2, InnerProduct, Cosine} {
		sc, err := NewScorer(m, data, n, d)
		if err != nil {
			b.Fatal(err)
		}
		fn := Distance(m)
		b.Run(m.String()+"/perrow", func(b *testing.B) {
			b.SetBytes(int64(n) * d * 4)
			var sink float32
			for i := 0; i < b.N; i++ {
				for r := 0; r < n; r++ {
					sink += fn(q, data[r*d:(r+1)*d])
				}
			}
			_ = sink
			b.ReportMetric(rows*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
		})
		b.Run(m.String()+"/block", func(b *testing.B) {
			b.SetBytes(int64(n) * d * 4)
			out := make([]float32, block)
			bound := sc.Bind(q)
			var sink float32
			for i := 0; i < b.N; i++ {
				for lo := 0; lo < n; lo += block {
					hi := lo + block
					if hi > n {
						hi = n
					}
					bound.ScoreBlock(lo, hi, out)
					sink += out[0]
				}
			}
			_ = sink
			b.ReportMetric(rows*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
		})
	}
}
