package vec

import (
	"fmt"
	"math"
)

// Aggregate scores (Section 2.1) combine the pairwise scores of
// multi-vector entities — e.g. several face shots per person or
// several passages per document — into one scalar that ordinary top-k
// machinery can order.

// Aggregator reduces the cross-distance matrix between the query
// vectors and the entity vectors to a single distance.
type Aggregator int

const (
	// AggMin keeps the single best (smallest) pairwise distance: an
	// entity matches if any of its vectors matches any query vector.
	AggMin Aggregator = iota
	// AggMean averages all pairwise distances.
	AggMean
	// AggMax keeps the worst pairwise distance (robust "all vectors
	// must match" semantics).
	AggMax
	// AggWeightedSum applies caller-provided per-query-vector weights
	// to the minimum distance each query vector achieves.
	AggWeightedSum
)

// String names the aggregator for CLI/API use.
func (a Aggregator) String() string {
	switch a {
	case AggMin:
		return "min"
	case AggMean:
		return "mean"
	case AggMax:
		return "max"
	case AggWeightedSum:
		return "weighted_sum"
	default:
		return fmt.Sprintf("agg(%d)", int(a))
	}
}

// ParseAggregator is the inverse of String.
func ParseAggregator(s string) (Aggregator, error) {
	switch s {
	case "min":
		return AggMin, nil
	case "mean":
		return AggMean, nil
	case "max":
		return AggMax, nil
	case "weighted_sum":
		return AggWeightedSum, nil
	}
	return 0, fmt.Errorf("vec: unknown aggregator %q", s)
}

// AggregateDistance computes the aggregate distance between a set of
// query vectors and a set of entity vectors under fn. weights is used
// only by AggWeightedSum and must then have one entry per query
// vector; pass nil otherwise.
func AggregateDistance(agg Aggregator, fn DistanceFunc, queries, entity [][]float32, weights []float32) float32 {
	if len(queries) == 0 || len(entity) == 0 {
		return float32(math.Inf(1))
	}
	switch agg {
	case AggMin:
		best := float32(math.Inf(1))
		for _, q := range queries {
			for _, e := range entity {
				if d := fn(q, e); d < best {
					best = d
				}
			}
		}
		return best
	case AggMean:
		var sum float32
		for _, q := range queries {
			for _, e := range entity {
				sum += fn(q, e)
			}
		}
		return sum / float32(len(queries)*len(entity))
	case AggMax:
		worst := float32(math.Inf(-1))
		for _, q := range queries {
			best := float32(math.Inf(1))
			for _, e := range entity {
				if d := fn(q, e); d < best {
					best = d
				}
			}
			if best > worst {
				worst = best
			}
		}
		return worst
	case AggWeightedSum:
		if len(weights) != len(queries) {
			panic("vec: AggWeightedSum needs one weight per query vector")
		}
		var sum float32
		for i, q := range queries {
			best := float32(math.Inf(1))
			for _, e := range entity {
				if d := fn(q, e); d < best {
					best = d
				}
			}
			sum += weights[i] * best
		}
		return sum
	default:
		panic("vec: unknown aggregator")
	}
}
