package vec

import "fmt"

// QuantScorer is the compressed-scan counterpart of Scorer: one per
// (metric, quantized dataset), scoring stored *codes* against a
// float32 query without decoding rows. Implementations precompute a
// per-query lookup table at Bind time so the per-row work is pure
// table gathers — the scan reads code bytes instead of float32s and
// becomes cache-resident for datasets whose float form is
// bandwidth-bound.
//
// Distances returned by a QuantBound are approximations of the true
// metric (quantization error of the codec, see DESIGN.md §12);
// callers that need exact results re-rank the top candidates with a
// full-precision Scorer over the retained float32 rows.
type QuantScorer interface {
	// Metric reports which metric the kernel approximates.
	Metric() Metric
	// Rows reports the number of encoded rows.
	Rows() int
	// Dim reports the dimensionality of the original vectors.
	Dim() int
	// BytesPerRow reports the resident scoring payload per row
	// (code bytes plus any cached per-row state), the numerator of
	// the compression ratio vs 4*Dim() float32 bytes.
	BytesPerRow() int
	// Bind precomputes per-query state (the LUT) and returns a bound
	// kernel sharing the Bound contract shape: ScoreAt / ScoreBlock /
	// ScoreIDs, so gather-block call sites switch between float and
	// quantized scans by configuration, not code.
	Bind(q []float32) QuantBound
}

// QuantBound is a QuantScorer bound to one query.
type QuantBound interface {
	// ScoreAt returns the approximate distance of row id.
	ScoreAt(id int) float32
	// ScoreBlock scores the contiguous rows [lo, hi) into out[:hi-lo].
	ScoreBlock(lo, hi int, out []float32)
	// ScoreIDs scores the gathered rows ids into out[:len(ids)].
	ScoreIDs(ids []int32, out []float32)
}

// SQ8Scorer is the int8 scalar-quantization kernel: rows are stored
// as one byte per dimension (code c in dimension j reconstructs to
// min[j] + c*step[j]) and each query binds a d×256 LUT holding that
// dimension's contribution for every possible byte, so a row's
// distance is d table lookups and adds — no decode, no multiply.
//
// Supported metrics: L2 (squared), InnerProduct, Cosine. Cosine
// additionally caches 1/||row|| of each *reconstructed* row at
// construction and folds it in after the dot-product gather.
type SQ8Scorer struct {
	metric  Metric
	n, d    int
	min     []float32 // len d: per-dimension range start
	step    []float32 // len d: per-dimension step, (max-min)/255
	codes   []byte    // len n*d, row-major
	invNorm []float32 // cosine only: 1/||reconstructed row||, len n
}

// NewSQ8Scorer wraps trained SQ ranges and encoded codes in a
// decode-free scan kernel. min/step must have length d and codes
// length n*d. Metrics other than L2/InnerProduct/Cosine are rejected:
// their distances do not decompose into per-(dimension, byte) terms.
func NewSQ8Scorer(m Metric, min, step []float32, codes []byte, n, d int) (*SQ8Scorer, error) {
	switch m {
	case L2, InnerProduct, Cosine:
	default:
		return nil, fmt.Errorf("vec: sq8 kernel does not support metric %v", m)
	}
	if len(min) != d || len(step) != d {
		return nil, fmt.Errorf("vec: sq8 ranges have %d/%d dims, want %d", len(min), len(step), d)
	}
	if len(codes) != n*d {
		return nil, fmt.Errorf("vec: sq8 codes hold %d bytes, want %d", len(codes), n*d)
	}
	s := &SQ8Scorer{metric: m, n: n, d: d, min: min, step: step, codes: codes}
	if m == Cosine {
		s.invNorm = make([]float32, n)
		row := make([]float32, d)
		for i := 0; i < n; i++ {
			code := codes[i*d : (i+1)*d]
			for j, c := range code {
				row[j] = min[j] + float32(c)*step[j]
			}
			s.invNorm[i] = invNormOf(row)
		}
	}
	return s, nil
}

// Metric implements QuantScorer.
func (s *SQ8Scorer) Metric() Metric { return s.metric }

// Rows implements QuantScorer.
func (s *SQ8Scorer) Rows() int { return s.n }

// Dim implements QuantScorer.
func (s *SQ8Scorer) Dim() int { return s.d }

// BytesPerRow implements QuantScorer: one code byte per dimension,
// plus the cached inverse norm under cosine.
func (s *SQ8Scorer) BytesPerRow() int {
	if s.metric == Cosine {
		return s.d + 4
	}
	return s.d
}

// Bind implements QuantScorer. The LUT is laid out dimension-major
// (lut[j*256+c]) so a row scan walks it in the same order it walks
// the code bytes. For L2 each entry is (q[j]-recon)²; for IP and
// cosine it is the (negated / raw) partial dot product with the
// reconstructed value, and cosine finishes with the cached row norm
// and the query norm.
func (s *SQ8Scorer) Bind(q []float32) QuantBound {
	b := &sq8Bound{s: s, lut: make([]float32, s.d*256)}
	switch s.metric {
	case L2:
		for j := 0; j < s.d; j++ {
			e := q[j] - s.min[j]
			st := s.step[j]
			row := b.lut[j*256 : (j+1)*256]
			for c := range row {
				diff := e - float32(c)*st
				row[c] = diff * diff
			}
		}
	case InnerProduct:
		// NegInnerProduct: accumulate -q[j]*recon directly so the
		// gather sum is the final distance.
		for j := 0; j < s.d; j++ {
			qj := q[j]
			mn, st := s.min[j], s.step[j]
			row := b.lut[j*256 : (j+1)*256]
			for c := range row {
				row[c] = -qj * (mn + float32(c)*st)
			}
		}
	case Cosine:
		for j := 0; j < s.d; j++ {
			qj := q[j]
			mn, st := s.min[j], s.step[j]
			row := b.lut[j*256 : (j+1)*256]
			for c := range row {
				row[c] = qj * (mn + float32(c)*st)
			}
		}
		b.qInv = invNormOf(q)
	}
	return b
}

type sq8Bound struct {
	s    *SQ8Scorer
	lut  []float32 // d*256, dimension-major
	qInv float32   // cosine: 1/||q||
}

// gather sums the LUT entries selected by one row's code bytes. Four
// independent accumulators hide the gather latency; the tail loop
// folds into acc0 so the result is deterministic for a given layout.
func (b *sq8Bound) gather(code []byte) float32 {
	lut := b.lut
	var a0, a1, a2, a3 float32
	j := 0
	for ; j+4 <= len(code); j += 4 {
		a0 += lut[j<<8|int(code[j])]
		a1 += lut[(j+1)<<8|int(code[j+1])]
		a2 += lut[(j+2)<<8|int(code[j+2])]
		a3 += lut[(j+3)<<8|int(code[j+3])]
	}
	for ; j < len(code); j++ {
		a0 += lut[j<<8|int(code[j])]
	}
	return (a0 + a1) + (a2 + a3)
}

// gather2 scores two rows in one pass, interleaving their lookups so
// eight loads are in flight instead of four — the LUT exceeds L1, and
// a single row's four dependency chains leave the load pipeline
// underfed. Each row keeps the same four accumulators receiving the
// same adds in the same order as gather, so a score is bit-identical
// whichever entry point computed it.
func (b *sq8Bound) gather2(c0, c1 []byte) (float32, float32) {
	lut := b.lut
	var a0, a1, a2, a3 float32
	var b0, b1, b2, b3 float32
	j := 0
	for ; j+4 <= len(c0); j += 4 {
		a0 += lut[j<<8|int(c0[j])]
		b0 += lut[j<<8|int(c1[j])]
		a1 += lut[(j+1)<<8|int(c0[j+1])]
		b1 += lut[(j+1)<<8|int(c1[j+1])]
		a2 += lut[(j+2)<<8|int(c0[j+2])]
		b2 += lut[(j+2)<<8|int(c1[j+2])]
		a3 += lut[(j+3)<<8|int(c0[j+3])]
		b3 += lut[(j+3)<<8|int(c1[j+3])]
	}
	for ; j < len(c0); j++ {
		a0 += lut[j<<8|int(c0[j])]
		b0 += lut[j<<8|int(c1[j])]
	}
	return (a0 + a1) + (a2 + a3), (b0 + b1) + (b2 + b3)
}

func (b *sq8Bound) finish(id int, sum float32) float32 {
	if b.s.metric == Cosine {
		// Zero rows/queries score 1, matching CosineDistance.
		return 1 - sum*b.s.invNorm[id]*b.qInv
	}
	return sum
}

// ScoreAt implements QuantBound.
func (b *sq8Bound) ScoreAt(id int) float32 {
	d := b.s.d
	return b.finish(id, b.gather(b.s.codes[id*d:(id+1)*d]))
}

// ScoreBlock implements QuantBound. Rows are scored pairwise through
// gather2; results match ScoreAt bit-exactly.
func (b *sq8Bound) ScoreBlock(lo, hi int, out []float32) {
	d := b.s.d
	codes := b.s.codes
	i := lo
	for ; i+2 <= hi; i += 2 {
		s0, s1 := b.gather2(codes[i*d:(i+1)*d], codes[(i+1)*d:(i+2)*d])
		out[i-lo] = b.finish(i, s0)
		out[i-lo+1] = b.finish(i+1, s1)
	}
	for ; i < hi; i++ {
		out[i-lo] = b.finish(i, b.gather(codes[i*d:(i+1)*d]))
	}
}

// ScoreIDs implements QuantBound. Gathered rows pair up the same way.
func (b *sq8Bound) ScoreIDs(ids []int32, out []float32) {
	d := b.s.d
	codes := b.s.codes
	i := 0
	for ; i+2 <= len(ids); i += 2 {
		id0, id1 := int(ids[i]), int(ids[i+1])
		s0, s1 := b.gather2(codes[id0*d:(id0+1)*d], codes[id1*d:(id1+1)*d])
		out[i] = b.finish(id0, s0)
		out[i+1] = b.finish(id1, s1)
	}
	for ; i < len(ids); i++ {
		id := int(ids[i])
		out[i] = b.finish(id, b.gather(codes[id*d:(id+1)*d]))
	}
}
