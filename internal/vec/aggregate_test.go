package vec

import (
	"math"
	"testing"
)

func TestAggregateMinMeanMax(t *testing.T) {
	q := [][]float32{{0, 0}, {10, 0}}
	e := [][]float32{{1, 0}, {10, 1}}
	// Pairwise squared L2:
	//   q0-e0: 1    q0-e1: 101
	//   q1-e0: 81   q1-e1: 1
	if got := AggregateDistance(AggMin, SquaredL2, q, e, nil); got != 1 {
		t.Fatalf("min = %v, want 1", got)
	}
	if got := AggregateDistance(AggMean, SquaredL2, q, e, nil); got != 46 {
		t.Fatalf("mean = %v, want 46", got)
	}
	// AggMax: per-query best is 1 (q0) and 1 (q1); worst of those = 1.
	if got := AggregateDistance(AggMax, SquaredL2, q, e, nil); got != 1 {
		t.Fatalf("max = %v, want 1", got)
	}
}

func TestAggregateWeightedSum(t *testing.T) {
	q := [][]float32{{0, 0}, {10, 0}}
	e := [][]float32{{1, 0}}
	// best per query vector: 1 and 81
	got := AggregateDistance(AggWeightedSum, SquaredL2, q, e, []float32{0.5, 0.25})
	want := float32(0.5*1 + 0.25*81)
	if got != want {
		t.Fatalf("weighted = %v, want %v", got, want)
	}
}

func TestAggregateWeightedSumPanicsOnBadWeights(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong weight count")
		}
	}()
	AggregateDistance(AggWeightedSum, SquaredL2, [][]float32{{0}}, [][]float32{{1}}, nil)
}

func TestAggregateEmptyIsInf(t *testing.T) {
	got := AggregateDistance(AggMin, SquaredL2, nil, [][]float32{{1}}, nil)
	if !math.IsInf(float64(got), 1) {
		t.Fatalf("empty queries = %v, want +inf", got)
	}
}

func TestAggregatorRoundTrip(t *testing.T) {
	for _, a := range []Aggregator{AggMin, AggMean, AggMax, AggWeightedSum} {
		got, err := ParseAggregator(a.String())
		if err != nil || got != a {
			t.Fatalf("round trip %v -> %v err=%v", a, got, err)
		}
	}
	if _, err := ParseAggregator("nope"); err == nil {
		t.Fatal("expected error")
	}
}

func TestLearnDiagonalMetricSeparates(t *testing.T) {
	// Dimension 0 carries the signal: similar pairs agree on it,
	// dissimilar pairs differ strongly. Dimension 1 is pure noise that
	// differs within similar pairs too.
	pairs := []Pair{
		{A: []float32{0, 0}, B: []float32{0.1, 5}, Similar: true},
		{A: []float32{1, 2}, B: []float32{0.9, -4}, Similar: true},
		{A: []float32{0, 0}, B: []float32{10, 0.1}, Similar: false},
		{A: []float32{1, 1}, B: []float32{-9, 1.2}, Similar: false},
	}
	mh, err := LearnDiagonalMetric(pairs, 2)
	if err != nil {
		t.Fatal(err)
	}
	// The learned metric must weight dim 0 far above dim 1.
	d0 := mh.Distance([]float32{0, 0}, []float32{1, 0})
	d1 := mh.Distance([]float32{0, 0}, []float32{0, 1})
	if d0 <= d1 {
		t.Fatalf("learned metric did not upweight the signal dim: d0=%v d1=%v", d0, d1)
	}
}

func TestLearnDiagonalMetricErrors(t *testing.T) {
	if _, err := LearnDiagonalMetric(nil, 0); err == nil {
		t.Fatal("want error for dim=0")
	}
	onlySim := []Pair{{A: []float32{0}, B: []float32{1}, Similar: true}}
	if _, err := LearnDiagonalMetric(onlySim, 1); err == nil {
		t.Fatal("want error when a class of pairs is missing")
	}
	bad := []Pair{
		{A: []float32{0}, B: []float32{1, 2}, Similar: true},
	}
	if _, err := LearnDiagonalMetric(bad, 1); err == nil {
		t.Fatal("want error for dimension mismatch")
	}
}

func TestSelectMetricPrefersMatchingScore(t *testing.T) {
	// Base vectors on a circle: cosine and L2 agree for unit vectors,
	// so build data where magnitude misleads L2 but direction defines
	// the truth, making cosine the right score.
	base := [][]float32{
		{10, 0},   // same direction as query, large magnitude
		{0.1, 0},  // same direction, small magnitude
		{0, 1},    // orthogonal, close to query in L2
		{0.6, .8}, // diagonal
	}
	queries := [][]float32{{0.5, 0}}
	truth := [][]int{{0, 1}} // the two same-direction vectors
	name, recalls := SelectMetric(DefaultCandidates(), base, queries, truth, 2)
	if name != "cosine" {
		t.Fatalf("SelectMetric picked %q (recalls=%v), want cosine", name, recalls)
	}
	if recalls["cosine"] != 1 {
		t.Fatalf("cosine recall = %v, want 1", recalls["cosine"])
	}
}

func TestSelectMetricDegenerate(t *testing.T) {
	name, recalls := SelectMetric(DefaultCandidates(), nil, nil, nil, 0)
	if name != "" || recalls != nil {
		t.Fatalf("degenerate call: %q %v", name, recalls)
	}
}

func TestRelativeContrastShrinksWithDimension(t *testing.T) {
	// i.i.d. uniform data: contrast at d=2 must exceed contrast at
	// d=256 (curse of dimensionality).
	mk := func(d, n int, seed int64) ([][]float32, []float32) {
		rng := newTestRNG(seed)
		base := make([][]float32, n)
		for i := range base {
			v := make([]float32, d)
			for j := range v {
				v[j] = rng.Float32()
			}
			base[i] = v
		}
		q := make([]float32, d)
		for j := range q {
			q[j] = rng.Float32()
		}
		return base, q
	}
	baseLo, qLo := mk(2, 400, 1)
	baseHi, qHi := mk(256, 400, 2)
	lo := RelativeContrast(SquaredL2, baseLo, qLo)
	hi := RelativeContrast(SquaredL2, baseHi, qHi)
	if lo <= hi {
		t.Fatalf("contrast should shrink with dimension: d=2 %v, d=256 %v", lo, hi)
	}
	if RelativeContrast(SquaredL2, nil, qLo) != 0 {
		t.Fatal("empty base should give 0")
	}
}
