package vdbms

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"vdbms/internal/dataset"
)

// TestDynamicConcurrentStress hammers one Dynamic collection with
// concurrent upserts, deletes, flushes, compactions, and parallel
// searches. It asserts nothing about result contents — its job is to
// run under `go test -race` (scripts/ci.sh does) and prove the
// LSM search fan-out introduces no data race with mutating traffic.
func TestDynamicConcurrentStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	dyn, err := OpenDynamic(DynamicConfig{Dim: 8, MemtableSize: 32, MaxSegments: 8, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	ds := dataset.Clustered(512, 8, 4, 0.4, 3)
	// Preload so searches have something to chew on from the start.
	for i := 0; i < 128; i++ {
		if err := dyn.Upsert(int64(i), ds.Row(i)); err != nil {
			t.Fatal(err)
		}
	}

	const (
		writers   = 3
		searchers = 3
		opsPerG   = 300
	)
	var wg sync.WaitGroup
	var failures atomic.Int64
	fail := func(format string, args ...any) {
		failures.Add(1)
		t.Errorf(format, args...)
	}

	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < opsPerG; i++ {
				id := int64(rng.Intn(512))
				switch rng.Intn(10) {
				case 0:
					dyn.Delete(id)
				case 1:
					if err := dyn.Flush(); err != nil {
						fail("flush: %v", err)
						return
					}
				case 2:
					if err := dyn.Compact(); err != nil {
						fail("compact: %v", err)
						return
					}
				default:
					if err := dyn.Upsert(id, ds.Row(int(id))); err != nil {
						fail("upsert %d: %v", id, err)
						return
					}
				}
			}
		}(int64(g + 1))
	}
	for g := 0; g < searchers; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < opsPerG; i++ {
				q := ds.Row(rng.Intn(512))
				hits, err := dyn.Search(q, 5, 64)
				if err != nil {
					fail("search: %v", err)
					return
				}
				for j := 1; j < len(hits); j++ {
					if hits[j].Dist < hits[j-1].Dist {
						fail("unsorted results at %d", j)
						return
					}
				}
				if _, ok := dyn.Get(int64(rng.Intn(512))); ok {
					_ = ok
				}
			}
		}(int64(100 + g))
	}
	wg.Wait()
	if failures.Load() > 0 {
		t.Fatalf("%d failures under concurrency", failures.Load())
	}
	// The collection must still be coherent after the storm.
	if _, err := dyn.Search(ds.Row(0), 5, 64); err != nil {
		t.Fatal(err)
	}
}
