package vdbms

import (
	"math"
	"testing"

	"vdbms/internal/dataset"
	"vdbms/internal/vec"
)

// TestDynamicIVFFlatCosineRegression pins the metric-blind segment
// builder bug: OpenDynamic used to build ivfflat segments with an
// unconfigured ivf.Config, so a cosine collection's sealed segments
// ranked (and reported distances) under squared L2. With nprobe
// covering every list the segment probe is an exact partitioned scan,
// so the merged results must match brute force under cosine exactly.
func TestDynamicIVFFlatCosineRegression(t *testing.T) {
	const (
		n, dim = 320, 16
		k      = 10
	)
	dyn, err := OpenDynamic(DynamicConfig{
		Dim: dim, Metric: "cosine", MemtableSize: 64,
		SegmentIndex: "ivfflat", Parallelism: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ds := dataset.Clustered(n, dim, 4, 0.4, 5)
	for i := 0; i < n; i++ {
		if err := dyn.Upsert(int64(i), ds.Row(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := dyn.Flush(); err != nil {
		t.Fatal(err)
	}
	if dyn.Segments() == 0 {
		t.Fatal("expected sealed segments")
	}
	cos := vec.Distance(vec.Cosine)
	for _, q := range ds.Queries(8, 0.05, 9) {
		// ef doubles as the bucket budget; 256 covers every list of
		// every segment, so the probe degenerates to an exact scan.
		got, err := dyn.Search(q, k, 256)
		if err != nil {
			t.Fatal(err)
		}
		want, err := dyn.inner.SearchExact(q, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("got %d hits, want %d", len(got), len(want))
		}
		for i := range got {
			if got[i].ID != want[i].ID {
				t.Fatalf("hit %d: id %d, brute-force cosine says %d", i, got[i].ID, want[i].ID)
			}
			if d := cos(q, ds.Row(int(got[i].ID))); math.Abs(float64(got[i].Dist-d)) > 1e-5 {
				t.Fatalf("hit %d: dist %v is not the cosine distance %v", i, got[i].Dist, d)
			}
		}
	}
}

// TestDynamicQuantizedSegments exercises the compressed segment path:
// hnsw segments storing sq8 codes, exact re-rank on top.
func TestDynamicQuantizedSegments(t *testing.T) {
	const (
		n, dim = 512, 16
		k      = 10
	)
	dyn, err := OpenDynamic(DynamicConfig{
		Dim: dim, MemtableSize: 128, Quantization: "sq8", RerankK: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	ds := dataset.Clustered(n, dim, 8, 0.4, 6)
	for i := 0; i < n; i++ {
		if err := dyn.Upsert(int64(i), ds.Row(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := dyn.Flush(); err != nil {
		t.Fatal(err)
	}
	var recall float64
	qs := ds.Queries(10, 0.05, 13)
	for _, q := range qs {
		got, err := dyn.Search(q, k, 128)
		if err != nil {
			t.Fatal(err)
		}
		want, err := dyn.inner.SearchExact(q, k)
		if err != nil {
			t.Fatal(err)
		}
		truth := map[int64]struct{}{}
		for _, h := range want {
			truth[h.ID] = struct{}{}
		}
		hit := 0
		for _, h := range got {
			if _, ok := truth[h.ID]; ok {
				hit++
			}
			// Re-ranked hits carry full-precision distances.
			if d := vec.SquaredL2(q, ds.Row(int(h.ID))); math.Abs(float64(h.Dist-d)) > 1e-4 {
				t.Fatalf("hit id %d: dist %v, exact %v", h.ID, h.Dist, d)
			}
		}
		recall += float64(hit) / float64(len(want))
	}
	if recall/float64(len(qs)) < 0.9 {
		t.Fatalf("quantized segment recall = %.2f", recall/float64(len(qs)))
	}
}

// TestDynamicQuantizationRequiresHNSW: ivfflat segments cannot store
// codes; asking for both must fail loudly at open, not rank quietly.
func TestDynamicQuantizationRequiresHNSW(t *testing.T) {
	_, err := OpenDynamic(DynamicConfig{Dim: 8, SegmentIndex: "ivfflat", Quantization: "sq8"})
	if err == nil {
		t.Fatal("ivfflat + quantization should be rejected")
	}
	if _, err := OpenDynamic(DynamicConfig{Dim: 8, Quantization: "bogus"}); err == nil {
		t.Fatal("unknown quantization should be rejected")
	}
}
