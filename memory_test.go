package vdbms

import (
	"testing"
	"time"

	"vdbms/internal/dataset"
	"vdbms/internal/memory"
	"vdbms/internal/storage"
)

// TestBoundedMemoryLadderSmoke is the CI gate for memory-tiered
// serving: a database held to a budget far smaller than its data must
// walk the degradation ladder — evict its column to the mmap tier —
// rather than grow without bound, and keep answering correctly from
// the mapped column.
func TestBoundedMemoryLadderSmoke(t *testing.T) {
	if !storage.MmapSupported() {
		t.Skip("no mmap on this platform")
	}
	db := New()
	defer db.Close()       //nolint:errcheck
	const budget = 1 << 20 // 1 MiB — the data below is ~2 MiB of floats
	mgr, err := db.EnableMemoryBudget(budget, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if db.MemoryManager() != mgr {
		t.Fatal("MemoryManager does not return the enabled manager")
	}
	if _, err := db.EnableMemoryBudget(budget, t.TempDir()); err == nil {
		t.Fatal("second EnableMemoryBudget succeeded")
	}

	const n, d = 8192, 64 // 8192 × 64 × 4 B = 2 MiB
	col, err := db.CreateCollection("v", Schema{Dim: d})
	if err != nil {
		t.Fatal(err)
	}
	ds := dataset.Clustered(n+1, d, 8, 0.3, 1)
	for i := 0; i < n; i++ {
		if _, err := col.Insert(ds.Row(i), nil); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}

	// The inserts pushed resident past the budget; the manager's actor
	// must evict the collection's column to mmap and bring the ladder
	// back down. Escalation kicks the actor immediately, so this
	// converges well under the deadline.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if mgr.Evictions.Load() >= 1 && col.Tier() == "mmap" && mgr.Stage() == memory.StageNormal {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("ladder never converged: stage=%v evictions=%d tier=%s resident=%d budget=%d",
				mgr.Stage(), mgr.Evictions.Load(), col.Tier(), mgr.Resident(), budget)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := mgr.Resident(); got >= budget {
		t.Fatalf("resident %d after eviction, want < %d", got, budget)
	}

	// Queries keep answering, correctly, from the mapped column.
	res, err := col.Search(SearchRequest{Vector: ds.Row(5), K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != 1 || res.Hits[0].ID != 5 {
		t.Fatalf("mmap-tier search = %+v, want exact self-match id 5", res.Hits)
	}

	// Writes still land: the write path promotes to heap, which pushes
	// the process back over budget — the actor evicts again rather than
	// letting residency run away.
	if _, err := col.Insert(ds.Row(n), nil); err != nil {
		t.Fatalf("insert after eviction: %v", err)
	}
	deadline = time.Now().Add(10 * time.Second)
	for mgr.Evictions.Load() < 2 || col.Tier() != "mmap" {
		if time.Now().After(deadline) {
			t.Fatalf("re-eviction never happened: stage=%v evictions=%d tier=%s",
				mgr.Stage(), mgr.Evictions.Load(), col.Tier())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := mgr.Promotions.Load(); got < 1 {
		t.Fatalf("promotions %d after a write to an evicted collection, want >= 1", got)
	}
	if col.Len() != n+1 {
		t.Fatalf("len %d, want %d", col.Len(), n+1)
	}
}

// TestMemoryBudgetAttachesLateCollections: collections created after
// EnableMemoryBudget are managed from birth.
func TestMemoryBudgetAttachesLateCollections(t *testing.T) {
	db := New()
	defer db.Close() //nolint:errcheck
	mgr, err := db.EnableMemoryBudget(1<<30, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	col, err := db.CreateCollection("late", Schema{Dim: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := col.Insert(make([]float32, 8), nil); err != nil {
		t.Fatal(err)
	}
	accounts := mgr.Accounts()
	if len(accounts) != 1 || accounts[0].Name() != "late" {
		t.Fatalf("accounts = %v, want [late]", accounts)
	}
	if accounts[0].Resident() == 0 {
		t.Fatal("late-created collection accounts zero resident bytes")
	}
}
