package vdbms

import "testing"

func TestTextCollectionEndToEnd(t *testing.T) {
	db := New()
	e := NewTextEmbedder(256)
	col, err := db.CreateCollection("notes", Schema{
		Dim:        e.Dim(),
		Metric:     "cosine",
		Attributes: map[string]string{"lang": "string"},
	})
	if err != nil {
		t.Fatal(err)
	}
	docs := []string{
		"vector database management systems",
		"approximate nearest neighbor search",
		"banana pancake recipe with maple syrup",
		"hierarchical navigable small world graphs",
		"chocolate cake baking instructions",
	}
	for _, d := range docs {
		if _, err := col.InsertText(e, d, map[string]any{"lang": "en"}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := col.SearchText(e, "managing a vector database system", 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hits[0].ID != 0 {
		t.Fatalf("text search top hit = %d, want 0 (the VDBMS doc)", res.Hits[0].ID)
	}
	// Cooking query lands on a cooking doc.
	res, err = col.SearchText(e, "how to bake a cake", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hits[0].ID != 4 {
		t.Fatalf("cooking query top hit = %d, want 4", res.Hits[0].ID)
	}
	// Hybrid text search with a filter.
	res, err = col.SearchText(e, "nearest neighbor", 1, []Filter{{Column: "lang", Op: "=", Value: "en"}})
	if err != nil || len(res.Hits) != 1 {
		t.Fatalf("hybrid text search: %v %v", res.Hits, err)
	}
}
