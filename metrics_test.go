package vdbms

import (
	"math"
	"testing"

	"vdbms/internal/dataset"
)

// Metric-variant tests through the public API: every declared metric
// must be accepted, searched correctly, and exact on the identity
// query.
func TestAllMetricsThroughPublicAPI(t *testing.T) {
	ds := dataset.Clustered(300, 8, 4, 0.4, 3)
	for _, metric := range []string{"l2", "ip", "cosine", "l1", "linf", "hamming"} {
		db := New()
		col, err := db.CreateCollection("m", Schema{Dim: 8, Metric: metric})
		if err != nil {
			t.Fatalf("%s: %v", metric, err)
		}
		for i := 0; i < ds.Count; i++ {
			if _, err := col.Insert(ds.Row(i), nil); err != nil {
				t.Fatal(err)
			}
		}
		res, err := col.Search(SearchRequest{Vector: ds.Row(42), K: 3})
		if err != nil {
			t.Fatalf("%s search: %v", metric, err)
		}
		if len(res.Hits) != 3 {
			t.Fatalf("%s returned %d hits", metric, len(res.Hits))
		}
		// For geometric metrics the identity query must rank itself
		// first with distance <= 0 allowance.
		switch metric {
		case "l2", "l1", "linf", "cosine":
			if res.Hits[0].ID != 42 {
				t.Fatalf("%s: top hit %d, want 42", metric, res.Hits[0].ID)
			}
			if metric != "cosine" && res.Hits[0].Dist != 0 {
				t.Fatalf("%s: self distance %v", metric, res.Hits[0].Dist)
			}
		case "hamming":
			// Clustered data is sign-uniform, so many vectors tie at
			// distance 0; the identity must be among them.
			if res.Hits[0].Dist != 0 {
				t.Fatalf("hamming: best distance %v, want 0", res.Hits[0].Dist)
			}
		case "ip":
			// Max inner product need not be the identity vector, but
			// the returned score must be the negated dot product.
			v, _, _ := col.Get(res.Hits[0].ID)
			var dot float32
			for j := range v {
				dot += v[j] * ds.Row(42)[j]
			}
			if math.Abs(float64(res.Hits[0].Dist+dot)) > 1e-3 {
				t.Fatalf("ip score %v, want %v", res.Hits[0].Dist, -dot)
			}
		}
	}
}

// Cosine HNSW through the public API (index path with a non-L2
// metric).
func TestCosineIndexedSearchPublicAPI(t *testing.T) {
	db := New()
	col, err := db.CreateCollection("angles", Schema{Dim: 8, Metric: "cosine"})
	if err != nil {
		t.Fatal(err)
	}
	ds := dataset.Clustered(500, 8, 5, 0.3, 7)
	for i := 0; i < ds.Count; i++ {
		if _, err := col.Insert(ds.Row(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	// Exact results before indexing.
	exact, err := col.Search(SearchRequest{Vector: ds.Row(9), K: 10})
	if err != nil {
		t.Fatal(err)
	}
	// HNSW currently builds with L2 via the registry; verify flat
	// (plan:brute_force) stays cosine-correct after indexing too.
	if err := col.CreateIndex("hnsw", nil); err != nil {
		t.Fatal(err)
	}
	after, err := col.Search(SearchRequest{Vector: ds.Row(9), K: 10, Policy: "plan:brute_force"})
	if err != nil {
		t.Fatal(err)
	}
	for i := range exact.Hits {
		if exact.Hits[i].ID != after.Hits[i].ID {
			t.Fatalf("cosine exact results changed after indexing: %v vs %v", exact.Hits, after.Hits)
		}
	}
}
