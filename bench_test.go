// Benchmarks: one testing.B target per experiment in DESIGN.md's
// index (E1–E12). cmd/vdbms-bench prints the full parameter-sweep
// tables; these benchmarks pin the hot path of each experiment so
// `go test -bench=. -benchmem` tracks regressions.
package vdbms

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"vdbms/internal/dataset"
	"vdbms/internal/dist"
	"vdbms/internal/executor"
	"vdbms/internal/filter"
	"vdbms/internal/index"
	"vdbms/internal/index/diskann"
	"vdbms/internal/index/hnsw"
	"vdbms/internal/index/ivf"
	"vdbms/internal/index/kdtree"
	"vdbms/internal/index/lsh"
	"vdbms/internal/index/nsg"
	"vdbms/internal/index/nsw"
	"vdbms/internal/lsm"
	"vdbms/internal/planner"
	"vdbms/internal/quant"
	"vdbms/internal/secure"
	"vdbms/internal/vec"
)

// benchData lazily builds the shared benchmark dataset and indexes so
// each is constructed once regardless of which benchmarks run.
var benchData struct {
	once sync.Once
	ds   *dataset.Dataset
	qs   [][]float32
	hnsw *hnsw.HNSW
	ivf  *ivf.IVF
}

func setupBench(b *testing.B) (*dataset.Dataset, [][]float32) {
	b.Helper()
	benchData.once.Do(func() {
		benchData.ds = dataset.Clustered(10000, 64, 32, 0.4, 1)
		benchData.qs = benchData.ds.Queries(64, 0.05, 2)
		var err error
		benchData.hnsw, err = hnsw.Build(benchData.ds.Data, benchData.ds.Count, benchData.ds.Dim, hnsw.Config{M: 12, Seed: 1})
		if err != nil {
			panic(err)
		}
		benchData.ivf, err = ivf.Build(benchData.ds.Data, benchData.ds.Count, benchData.ds.Dim, ivf.Config{NList: 100, Seed: 1})
		if err != nil {
			panic(err)
		}
	})
	return benchData.ds, benchData.qs
}

// BenchmarkE1Scores measures the basic similarity-score kernels
// (experiment E1a: score design).
func BenchmarkE1Scores(b *testing.B) {
	ds, qs := setupBench(b)
	row := ds.Row(17)
	for _, c := range vec.DefaultCandidates() {
		b.Run(c.Name, func(b *testing.B) {
			q := qs[0]
			for i := 0; i < b.N; i++ {
				_ = c.Fn(q, row)
			}
		})
	}
}

// BenchmarkE1bContrast measures the relative-contrast statistic used
// by the curse-of-dimensionality sweep (E1b).
func BenchmarkE1bContrast(b *testing.B) {
	ds, qs := setupBench(b)
	rows := ds.Rows()[:1000]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vec.RelativeContrast(vec.SquaredL2, rows, qs[i%len(qs)])
	}
}

// BenchmarkE2LSH measures LSH search (E2).
func BenchmarkE2LSH(b *testing.B) {
	ds, qs := setupBench(b)
	l, err := lsh.Build(ds.Data, ds.Count, ds.Dim, lsh.Config{L: 8, K: 8, Family: lsh.PStable, W: 8, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Search(qs[i%len(qs)], 10, index.Params{}) //nolint:errcheck
	}
}

// BenchmarkE3IVF measures IVF search across nprobe (E3).
func BenchmarkE3IVF(b *testing.B) {
	_, qs := setupBench(b)
	for _, np := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("nprobe=%d", np), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchData.ivf.Search(qs[i%len(qs)], 10, index.Params{NProbe: np}) //nolint:errcheck
			}
		})
	}
}

// BenchmarkE4Quant measures PQ encode and ADC table construction (E4).
func BenchmarkE4Quant(b *testing.B) {
	ds, qs := setupBench(b)
	pq, err := quant.TrainPQ(ds.Data[:2000*ds.Dim], 2000, ds.Dim, quant.PQConfig{M: 8, Ks: 64, Seed: 1, MaxIter: 10})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("encode", func(b *testing.B) {
		code := make([]byte, pq.M)
		for i := 0; i < b.N; i++ {
			pq.Encode(ds.Row(i%ds.Count), code)
		}
	})
	b.Run("adc-table", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pq.ADC(qs[i%len(qs)])
		}
	})
	b.Run("adc-distance", func(b *testing.B) {
		tab := pq.ADC(qs[0])
		code := pq.Encode(ds.Row(0), nil)
		for i := 0; i < b.N; i++ {
			tab.Distance(code)
		}
	})
}

// BenchmarkE5Trees measures randomized-tree forest search (E5).
func BenchmarkE5Trees(b *testing.B) {
	ds, qs := setupBench(b)
	tr, err := kdtree.Build(ds.Data, ds.Count, ds.Dim, kdtree.Config{Mode: kdtree.RandomDim, Trees: 8, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Search(qs[i%len(qs)], 10, index.Params{Ef: 256}) //nolint:errcheck
	}
}

// BenchmarkE6Graphs measures the graph-index search kernels (E6).
func BenchmarkE6Graphs(b *testing.B) {
	ds, qs := setupBench(b)
	b.Run("hnsw/ef=64", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchData.hnsw.Search(qs[i%len(qs)], 10, index.Params{Ef: 64}) //nolint:errcheck
		}
	})
	g, err := nsw.Build(ds.Data[:4000*ds.Dim], 4000, ds.Dim, nsw.Config{M: 8})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("nsw/ef=64", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g.Search(qs[i%len(qs)], 10, index.Params{Ef: 64}) //nolint:errcheck
		}
	})
	v, err := nsg.Build(ds.Data[:4000*ds.Dim], 4000, ds.Dim, nsg.Config{Variant: nsg.Vamana, R: 12, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("vamana/ef=64", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			v.Search(qs[i%len(qs)], 10, index.Params{Ef: 64}) //nolint:errcheck
		}
	})
}

// BenchmarkE7Disk measures DiskANN beam search including I/O (E7).
func BenchmarkE7Disk(b *testing.B) {
	ds, qs := setupBench(b)
	path := filepath.Join(b.TempDir(), "bench.diskann")
	da, err := diskann.Build(ds.Data[:4000*ds.Dim], 4000, ds.Dim, path, diskann.Config{R: 16, Beam: 4, Seed: 1, CachePages: 512})
	if err != nil {
		b.Fatal(err)
	}
	defer da.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		da.Search(qs[i%len(qs)], 10, index.Params{Ef: 40}) //nolint:errcheck
	}
}

// BenchmarkE8Hybrid measures the four hybrid plans at 10% selectivity
// (E8).
func BenchmarkE8Hybrid(b *testing.B) {
	ds, qs := setupBench(b)
	attrs := filter.NewTable()
	if _, err := attrs.AddColumn("a", filter.Int64); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < ds.Count; i++ {
		attrs.AppendRow(map[string]filter.Value{"a": filter.IntV(int64(i * 7919 % 1000))}) //nolint:errcheck
	}
	env, err := executor.NewEnv(ds.Data, ds.Count, ds.Dim, nil, benchData.hnsw, attrs)
	if err != nil {
		b.Fatal(err)
	}
	preds := []filter.Predicate{{Column: "a", Op: filter.Lt, Value: filter.IntV(100)}}
	for _, plan := range []planner.Plan{
		{Kind: planner.BruteForce},
		{Kind: planner.PreFilter},
		{Kind: planner.PostFilter, Alpha: 4},
		{Kind: planner.SingleStage},
	} {
		b.Run(plan.Kind.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				env.Execute(plan, qs[i%len(qs)], 10, preds, executor.Options{Ef: 100}) //nolint:errcheck
			}
		})
	}
}

// BenchmarkE9FastScan compares the float ADC table scan with the
// packed 4-bit LUT scan (E9).
func BenchmarkE9FastScan(b *testing.B) {
	ds, qs := setupBench(b)
	pq, err := quant.TrainPQ(ds.Data[:2000*ds.Dim], 2000, ds.Dim, quant.PQConfig{M: 16, Ks: 16, Seed: 1, MaxIter: 10})
	if err != nil {
		b.Fatal(err)
	}
	n := 50000
	codes := make([]byte, n*pq.M)
	for i := 0; i < n; i++ {
		pq.Encode(ds.Row(i%ds.Count), codes[i*pq.M:(i+1)*pq.M])
	}
	packed, err := pq.PackCodes4(codes, n)
	if err != nil {
		b.Fatal(err)
	}
	tab := pq.ADC(qs[0])
	ft, err := tab.Quantize()
	if err != nil {
		b.Fatal(err)
	}
	out := make([]float32, n)
	b.Run("adc-float-table", func(b *testing.B) {
		b.SetBytes(int64(n))
		for i := 0; i < b.N; i++ {
			tab.DistanceBatchNaive(codes, out)
		}
	})
	b.Run("packed-4bit-lut", func(b *testing.B) {
		b.SetBytes(int64(n))
		for i := 0; i < b.N; i++ {
			ft.DistanceBatch4(packed, out)
		}
	})
}

// BenchmarkE10Batch measures batched execution (E10).
func BenchmarkE10Batch(b *testing.B) {
	ds, qs := setupBench(b)
	env, err := executor.NewEnv(ds.Data, ds.Count, ds.Dim, nil, benchData.hnsw, nil)
	if err != nil {
		b.Fatal(err)
	}
	plan := planner.Plan{Kind: planner.SingleStage}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.SearchBatch(plan, qs, 10, nil, executor.Options{Ef: 64}) //nolint:errcheck
	}
}

// BenchmarkE11Dist measures scatter-gather over 4 local shards (E11).
func BenchmarkE11Dist(b *testing.B) {
	ds, qs := setupBench(b)
	p := dist.PartitionRandom(ds.Count, 4, 7)
	partData, partIDs := dist.SplitRows(ds.Data, ds.Count, ds.Dim, p)
	shards := make([]dist.Shard, p.Parts)
	for i := range shards {
		idx, err := hnsw.Build(partData[i], len(partIDs[i]), ds.Dim, hnsw.Config{M: 8, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		shards[i] = dist.NewLocalShard(idx, partIDs[i])
	}
	router := dist.NewRouter(shards, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		router.Search(context.Background(), qs[i%len(qs)], 10, 64) //nolint:errcheck
	}
}

// BenchmarkE12LSM measures the write path (upsert incl. amortized
// segment builds) and the merged search path of the LSM collection
// (E12).
func BenchmarkE12LSM(b *testing.B) {
	ds, qs := setupBench(b)
	b.Run("upsert", func(b *testing.B) {
		col, err := lsm.New(lsm.Config{Dim: ds.Dim, MemtableSize: 512})
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			col.Upsert(int64(i), ds.Row(i%ds.Count)) //nolint:errcheck
		}
	})
	b.Run("search", func(b *testing.B) {
		col, err := lsm.New(lsm.Config{Dim: ds.Dim, MemtableSize: 1000})
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 4000; i++ {
			col.Upsert(int64(i), ds.Row(i)) //nolint:errcheck
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			col.Search(qs[i%len(qs)], 10, 64, nil) //nolint:errcheck
		}
	})
}

// BenchmarkE13Secure measures the encrypted-domain scan of the ASPE
// secure k-NN scheme (E13).
func BenchmarkE13Secure(b *testing.B) {
	ds, qs := setupBench(b)
	key, err := secure.NewKey(ds.Dim, 7)
	if err != nil {
		b.Fatal(err)
	}
	srv := secure.NewServer(ds.Dim)
	n := 4000
	for i := 0; i < n; i++ {
		enc, err := key.EncryptVector(ds.Row(i))
		if err != nil {
			b.Fatal(err)
		}
		srv.Add(int64(i), enc) //nolint:errcheck
	}
	tok, err := key.EncryptQuery(qs[0])
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv.TopK(tok, 10) //nolint:errcheck
	}
}
