module vdbms

go 1.23
