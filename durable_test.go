package vdbms

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"vdbms/internal/dataset"
)

func TestOpenCloseReopenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Durability{})
	if err != nil {
		t.Fatal(err)
	}
	col, err := db.CreateCollection("products", Schema{
		Dim:        16,
		Metric:     "l2",
		Attributes: map[string]string{"price": "float", "cat": "int"},
	})
	if err != nil {
		t.Fatal(err)
	}
	ds := dataset.Clustered(80, 16, 4, 0.4, 1)
	for i := 0; i < 80; i++ {
		if _, err := col.Insert(ds.Row(i), map[string]any{"price": float64(i), "cat": i % 5}); err != nil {
			t.Fatal(err)
		}
	}
	if err := col.CreateIndex("ivfflat", map[string]int{"nlist": 4}); err != nil {
		t.Fatal(err)
	}
	if err := col.Delete(7); err != nil {
		t.Fatal(err)
	}
	durable, lastLSN, _ := col.Durability()
	if !durable || lastLSN == 0 {
		t.Fatalf("durability status: %v %d", durable, lastLSN)
	}
	want, err := col.Search(SearchRequest{Vector: ds.Row(3), K: 5, Policy: "plan:brute_force"})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the collection comes back by itself.
	db2, err := Open(dir, Durability{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	col2, err := db2.Collection("products")
	if err != nil {
		t.Fatal(err)
	}
	if col2.Len() != 79 || col2.Dim() != 16 {
		t.Fatalf("recovered: live=%d dim=%d", col2.Len(), col2.Dim())
	}
	if kind, _, _ := col2.IndexInfo(); kind != "ivfflat" {
		t.Fatalf("recovered index: %q", kind)
	}
	if types := col2.AttributeTypes(); types["price"] != "float" || types["cat"] != "int" {
		t.Fatalf("recovered attribute types: %v", types)
	}
	got, err := col2.Search(SearchRequest{Vector: ds.Row(3), K: 5, Policy: "plan:brute_force"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Hits) != len(want.Hits) {
		t.Fatalf("hits: %d vs %d", len(got.Hits), len(want.Hits))
	}
	for i := range want.Hits {
		if got.Hits[i] != want.Hits[i] {
			t.Fatalf("hit %d: %+v vs %+v", i, got.Hits[i], want.Hits[i])
		}
	}
	// New writes on the recovered collection are durable too.
	if _, err := col2.Insert(ds.Row(0), map[string]any{"price": 1.0, "cat": 1}); err != nil {
		t.Fatal(err)
	}
}

func TestOpenRejectsBadNames(t *testing.T) {
	db, err := Open(t.TempDir(), Durability{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for _, name := range []string{"", ".", "..", "a/b", `a\b`, ".hidden"} {
		if _, err := db.CreateCollection(name, Schema{Dim: 4}); err == nil {
			t.Fatalf("name %q should be rejected on a durable DB", name)
		}
	}
}

func TestDropCollectionRemovesDurableState(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Durability{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateCollection("gone", Schema{Dim: 4}); err != nil {
		t.Fatal(err)
	}
	if err := db.DropCollection("gone"); err != nil {
		t.Fatal(err)
	}
	// Dropping removed the files: the name is immediately reusable.
	if _, err := db.CreateCollection("gone", Schema{Dim: 4}); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenBadFsyncPolicy(t *testing.T) {
	if _, err := Open(t.TempDir(), Durability{Fsync: "sometimes"}); err == nil {
		t.Fatal("want policy parse error")
	}
}

func TestConcurrentCreateSameNameIsSerialized(t *testing.T) {
	// Review regression: two creators racing on the same name used to
	// both run core.CreateDurable before db.mu arbitrated, and could
	// unlink each other's freshly-headered WAL segment inside
	// dir/<name>. The registry now reserves the name first, so exactly
	// one creator touches the directory.
	dir := t.TempDir()
	db, err := Open(dir, Durability{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = db.CreateCollection("c", Schema{Dim: 4})
		}(i)
	}
	wg.Wait()
	ok := 0
	for _, e := range errs {
		if e == nil {
			ok++
		}
	}
	if ok != 1 {
		t.Fatalf("%d creators succeeded, want exactly 1 (errs: %v)", ok, errs)
	}
	col, err := db.Collection("c")
	if err != nil {
		t.Fatal(err)
	}
	// The winner's WAL is the one the registry tracks: an acknowledged
	// write lands in a linked file and survives close + reopen.
	if _, err := col.Insert(make([]float32, 4), map[string]any{}); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir, Durability{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	col2, err := db2.Collection("c")
	if err != nil {
		t.Fatal(err)
	}
	if col2.Len() != 1 {
		t.Fatalf("recovered %d rows, want 1", col2.Len())
	}
}

func TestDropCollectionDespiteCloseError(t *testing.T) {
	// Review regression: DropCollection returned before os.RemoveAll
	// when Close failed, leaving the files to resurrect the
	// "permanently dropped" collection on the next Open.
	dir := t.TempDir()
	db, err := Open(dir, Durability{})
	if err != nil {
		t.Fatal(err)
	}
	col, err := db.CreateCollection("doomed", Schema{Dim: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := col.Insert(make([]float32, 4), map[string]any{}); err != nil {
		t.Fatal(err)
	}
	// Sabotage the final checkpoint: a directory squats on the path the
	// close-time checkpoint will rename onto, so Close must fail.
	_, lastLSN, _ := col.Durability()
	decoy := filepath.Join(dir, "doomed", fmt.Sprintf("checkpoint-%016x.ckpt", lastLSN))
	if err := os.Mkdir(decoy, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := db.DropCollection("doomed"); err == nil {
		t.Fatal("want the close error surfaced")
	}
	if _, err := os.Stat(filepath.Join(dir, "doomed")); !os.IsNotExist(err) {
		t.Fatalf("collection directory still present after drop: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir, Durability{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if _, err := db2.Collection("doomed"); err == nil {
		t.Fatal("dropped collection resurrected on reopen")
	}
}
