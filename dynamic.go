package vdbms

import (
	"fmt"

	"vdbms/internal/index"
	"vdbms/internal/index/hnsw"
	"vdbms/internal/index/ivf"
	"vdbms/internal/lsm"
	"vdbms/internal/vec"
)

// DynamicConfig configures an LSM-backed collection tuned for
// high-write workloads (out-of-place updates, Section 2.3(3)).
type DynamicConfig struct {
	// Dim is the vector dimensionality (required).
	Dim int
	// Metric is the similarity score name; default "l2".
	Metric string
	// MemtableSize is the number of buffered writes before the
	// memtable is sealed into an indexed segment; default 1024.
	MemtableSize int
	// MaxSegments triggers compaction; default 8.
	MaxSegments int
	// SegmentIndex selects the per-segment index family: "hnsw"
	// (default) or "ivfflat".
	SegmentIndex string
	// Parallelism is the intra-query worker count: searches fan out
	// over the memtable and sealed segments concurrently. 0 uses every
	// CPU (GOMAXPROCS), 1 searches serially. Results are identical at
	// every setting.
	Parallelism int
	// Quantization stores segment index vectors as codes ("sq8", "pq",
	// "opq"; "" or "none" disables). Segment searches scan codes and
	// re-rank the top RerankK candidates at full precision. Only hnsw
	// segments support it.
	Quantization string
	// RerankK is the approximate candidate count re-scored exactly per
	// segment search when Quantization is set; 0 picks max(4k, 32).
	RerankK int
}

// Dynamic is an updatable collection: upserts and deletes are cheap
// and never rebuild existing segment indexes; searches merge the
// memtable with every sealed segment.
//
// Segment index builds (flush and compaction) run off the data lock:
// searches and concurrent writers proceed while a build is in flight,
// with freshly sealed rows served by exact scan until their index
// installs. Maintenance itself is single-flight — concurrent Flush or
// Compact calls serialize, and only the writer whose Upsert filled the
// memtable waits for the seal it triggered.
type Dynamic struct {
	inner *lsm.Collection
}

// OpenDynamic creates an empty dynamic collection.
func OpenDynamic(cfg DynamicConfig) (*Dynamic, error) {
	metric := cfg.Metric
	if metric == "" {
		metric = "l2"
	}
	m, err := vec.ParseMetric(metric)
	if err != nil {
		return nil, err
	}
	qkind, err := index.ParseQuantKind(cfg.Quantization)
	if err != nil {
		return nil, err
	}
	spec := index.QuantSpec{Kind: qkind, RerankK: cfg.RerankK}
	var builder lsm.IndexBuilder
	switch cfg.SegmentIndex {
	case "", "hnsw":
		builder = func(data []float32, n, d int) (index.Index, error) {
			return hnsw.Build(data, n, d, hnsw.Config{M: 8, Seed: 1, Metric: m, Quant: spec})
		}
	case "ivfflat":
		if spec.Enabled() {
			return nil, fmt.Errorf("vdbms: quantization requires hnsw segments")
		}
		// The segment builder must carry the collection metric: an
		// unconfigured ivf.Config scores lists under L2, silently
		// mis-ranking cosine and inner-product collections.
		builder = func(data []float32, n, d int) (index.Index, error) {
			return ivf.Build(data, n, d, ivf.Config{Seed: 1, Metric: m})
		}
	default:
		return nil, fmt.Errorf("vdbms: unknown segment index %q", cfg.SegmentIndex)
	}
	inner, err := lsm.New(lsm.Config{
		Dim:          cfg.Dim,
		MemtableSize: cfg.MemtableSize,
		MaxSegments:  cfg.MaxSegments,
		Metric:       m,
		Builder:      builder,
		Parallelism:  cfg.Parallelism,
	})
	if err != nil {
		return nil, err
	}
	return &Dynamic{inner: inner}, nil
}

// Upsert inserts or replaces the vector stored under id.
func (d *Dynamic) Upsert(id int64, v []float32) error { return d.inner.Upsert(id, v) }

// Delete hides id from future searches; false if id was absent.
func (d *Dynamic) Delete(id int64) bool { return d.inner.Delete(id) }

// Get returns the current vector for id.
func (d *Dynamic) Get(id int64) ([]float32, bool) { return d.inner.Get(id) }

// Len returns the live vector count.
func (d *Dynamic) Len() int { return d.inner.Len() }

// Segments returns the sealed segment count.
func (d *Dynamic) Segments() int { return d.inner.Segments() }

// Flush seals the memtable into a segment immediately. The segment's
// index is built without blocking reads or writes; its rows stay
// searchable (by exact scan) throughout.
func (d *Dynamic) Flush() error { return d.inner.Flush() }

// Compact merges segments and drops deleted rows.
func (d *Dynamic) Compact() error { return d.inner.Compact() }

// Search returns the k nearest live vectors; ef tunes segment index
// beam width (0 = default).
func (d *Dynamic) Search(q []float32, k, ef int) ([]Hit, error) {
	res, err := d.inner.Search(q, k, ef, nil)
	if err != nil {
		return nil, err
	}
	out := make([]Hit, len(res))
	for i, r := range res {
		out[i] = Hit{ID: r.ID, Dist: r.Dist}
	}
	return out, nil
}
