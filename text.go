package vdbms

import "vdbms/internal/embed"

// TextEmbedder is the built-in embedding model for indirect data
// manipulation (Section 2.1(1) of the paper): the collection owns the
// text -> vector mapping, so callers insert and query entities rather
// than vectors. It hashes word unigrams and character trigrams into a
// fixed dimension and L2-normalizes, so use Metric "cosine" (or "ip")
// on collections storing its output.
type TextEmbedder = embed.TextEmbedder

// NewTextEmbedder creates an embedder producing dim-dimensional
// vectors (128-512 recommended).
func NewTextEmbedder(dim int) *TextEmbedder { return embed.NewTextEmbedder(dim) }

// InsertText embeds the text with e and inserts the resulting vector.
func (c *Collection) InsertText(e *TextEmbedder, text string, attrs map[string]any) (int64, error) {
	return c.Insert(e.Embed(text), attrs)
}

// SearchText embeds the query with e and runs a k-NN (optionally
// hybrid) search.
func (c *Collection) SearchText(e *TextEmbedder, query string, k int, filters []Filter) (SearchResult, error) {
	return c.Search(SearchRequest{Vector: e.Embed(query), K: k, Filters: filters})
}
