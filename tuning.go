package vdbms

// Public surface of adaptive query optimization: the recall-SLO
// auto-tuner (EnableAutoTune / TuneNow), per-query and per-collection
// recall targets (SearchRequest.TargetRecall / SetTargetRecall), and
// collection-level search-parameter defaults (SetSearchDefaults).
// DESIGN.md §14 describes the machinery: a background pass replays
// sampled live queries against exact ground truth and against the
// index at every rung of an Ef/NProbe ladder, maintains a
// recall-vs-cost frontier per (index kind, k), and resolves a target
// recall to the cheapest parameter the frontier proves meets it.
// With Reselect enabled, the same pass watches for drift no parameter
// can fix and hands a new index recipe to the background builder for
// a non-blocking swap.

import (
	"time"

	"vdbms/internal/core"
)

// TuneOptions configures the recall-SLO auto-tuner.
type TuneOptions struct {
	// Interval is the cadence of background tuning passes. Zero runs
	// no background loop — sampling still starts, and TuneNow runs
	// passes on demand.
	Interval time.Duration
	// TargetRecall, in (0,1], becomes the collection's default recall
	// target (same effect as SetTargetRecall): queries without
	// explicit Ef/NProbe resolve against the tuned frontier. Zero
	// leaves the collection default unset.
	TargetRecall float64
	// ReservoirSize caps how many live queries are retained for
	// replay (default 256; shared with the recall auditor).
	ReservoirSize int
	// PassSamples caps the sampled queries one pass replays; each
	// costs one exact scan plus one index probe per ladder rung
	// (default 16).
	PassSamples int
	// MinSamples is the per-parameter replay count before the tuner
	// trusts a measurement (default 8).
	MinSamples int
	// Margin is the recall headroom required before the tuner moves
	// to a cheaper parameter — hysteresis against oscillation
	// (default 0.01).
	Margin float64
	// Reselect lets the tuner rebuild the index when it detects drift
	// no parameter can fix: an unindexed collection grown past the
	// scan/graph crossover, a recall target the whole frontier cannot
	// reach, or a heavily-filtered highly-selective workload on a
	// graph index. Rebuilds run on the background builder and install
	// atomically; queries never block on them. Off by default.
	Reselect bool
}

// TuneReport reports one tuning pass.
type TuneReport struct {
	Collection string  `json:"collection"`
	Outcome    string  `json:"outcome"` // "ok", "empty", "no_index", or "error"
	Samples    int     `json:"samples"`
	Stale      int     `json:"stale"`
	Kind       string  `json:"kind"`   // index kind tuned
	Knob       string  `json:"knob"`   // "ef" or "nprobe"
	Target     float64 `json:"target"` // effective recall target (0 = none)
	// Resolved is the parameter the frontier currently resolves for
	// the target at the pass's dominant k; Trusted says whether it
	// came from measured data (false = safe default).
	Resolved int  `json:"resolved"`
	Trusted  bool `json:"trusted"`
	// BestRecall is the highest trusted recall on the frontier — when
	// it sits below Target, no parameter can meet the SLO and only a
	// stronger index can.
	BestRecall float64 `json:"best_recall"`
	// Drift is the index re-selection decision this pass proposed
	// ("build_graph", "strengthen", "partition", or empty), and
	// DriftFired whether a rebuild was actually started.
	Drift      string        `json:"drift,omitempty"`
	DriftFired bool          `json:"drift_fired,omitempty"`
	Elapsed    time.Duration `json:"elapsed_ns"`
}

func tuneConfig(opts TuneOptions) core.TuneConfig {
	return core.TuneConfig{
		Interval:      opts.Interval,
		TargetRecall:  opts.TargetRecall,
		ReservoirSize: opts.ReservoirSize,
		PassSamples:   opts.PassSamples,
		MinSamples:    opts.MinSamples,
		Margin:        opts.Margin,
		Reselect:      opts.Reselect,
	}
}

func convertTuneReport(rep core.TuneReport) TuneReport {
	return TuneReport{
		Collection: rep.Collection,
		Outcome:    rep.Outcome,
		Samples:    rep.Samples,
		Stale:      rep.Stale,
		Kind:       rep.Kind,
		Knob:       rep.Knob,
		Target:     rep.Target,
		Resolved:   rep.Resolved,
		Trusted:    rep.Trusted,
		BestRecall: rep.BestRecall,
		Drift:      rep.Drift,
		DriftFired: rep.DriftFired,
		Elapsed:    rep.Elapsed,
	}
}

// EnableAutoTune starts sampling this collection's live queries and
// (when opts.Interval > 0) tuning them in the background. Each pass
// replays sampled queries against exact ground truth and against the
// index across a ladder of Ef/NProbe values, building the
// recall-vs-cost frontier that answers SearchRequest.TargetRecall.
// Tuning runs entirely off the query path.
func (c *Collection) EnableAutoTune(opts TuneOptions) {
	c.inner.EnableTune(tuneConfig(opts))
}

// DisableAutoTune stops background tuning. The learned frontier is
// kept: queries with a recall target keep resolving against the last
// measured state.
func (c *Collection) DisableAutoTune() { c.inner.DisableTune() }

// TuneNow runs one tuning pass synchronously and returns its report.
// EnableAutoTune (even with Interval 0) must have run first so there
// are sampled queries to replay; before that the outcome is "empty".
func (c *Collection) TuneNow() (TuneReport, error) {
	rep, err := c.inner.TuneNow()
	return convertTuneReport(rep), err
}

// SetTargetRecall sets (or clears, with 0) the collection's default
// recall target. Queries without explicit Ef/NProbe or a per-query
// TargetRecall resolve their search parameters against it.
func (c *Collection) SetTargetRecall(target float64) {
	c.inner.SetTargetRecall(target)
}

// TargetRecall reports the collection's default recall target (0 =
// none).
func (c *Collection) TargetRecall() float64 { return c.inner.TargetRecall() }

// SetSearchDefaults sets collection-level default search parameters,
// used when a query carries neither explicit knobs nor a recall
// target. Zeros clear them (the index's built-in defaults apply).
func (c *Collection) SetSearchDefaults(ef, nprobe int) {
	c.inner.SetSearchDefaults(ef, nprobe)
}

// SearchDefaults reports the collection-level default search
// parameters set by SetSearchDefaults.
func (c *Collection) SearchDefaults() (ef, nprobe int) {
	return c.inner.SearchDefaults()
}

// EnableAutoTune turns on auto-tuning for every current collection
// and every collection created or restored later.
func (db *DB) EnableAutoTune(opts TuneOptions) {
	db.mu.Lock()
	o := opts
	db.tune = &o
	cols := make([]*Collection, 0, len(db.collections))
	for _, c := range db.collections {
		cols = append(cols, c)
	}
	db.mu.Unlock()
	for _, c := range cols {
		c.EnableAutoTune(opts)
	}
}
