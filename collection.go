package vdbms

import (
	"context"
	"fmt"

	"vdbms/internal/core"
	"vdbms/internal/executor"
	"vdbms/internal/filter"
	"vdbms/internal/obs"
	"vdbms/internal/vec"
)

// Schema declares a collection's shape.
type Schema struct {
	// Dim is the vector dimensionality (required).
	Dim int
	// Metric is the similarity score: "l2" (default), "ip", "cosine",
	// "l1", "linf", or "hamming".
	Metric string
	// Attributes maps column names to types: "int", "float", or
	// "string". Attribute columns power hybrid (predicated) queries.
	Attributes map[string]string
	// RebuildFraction controls automatic index rebuilds: when more
	// than this fraction of indexed rows has been mutated, a rebuild
	// starts on a background goroutine and installs atomically when
	// done. Queries never wait for it (see WaitForIndex). Default 0.2.
	RebuildFraction float64
	// Quantization is the default vector codec for indexes created on
	// this collection: "none" (default), "sq8", "pq", or "opq".
	// Quant-capable index families store codes instead of float32 rows,
	// scan them with fused kernels, and re-rank the top RerankK
	// candidates at full precision; families that cannot honor the
	// codec ignore the default. CreateIndex opts override per index.
	Quantization string
	// RerankK is the default approximate candidate count re-scored
	// exactly per query when Quantization is set; 0 picks max(4k, 32).
	RerankK int
}

// Collection is a named vector collection with optional attributes and
// an optional ANN index. All methods are safe for concurrent use.
// Reads are snapshot-isolated: each query runs against the immutable
// epoch current when it started and never blocks on writers or on
// background index rebuilds (DESIGN.md §9 has the exact visibility
// contract).
type Collection struct {
	inner *core.Collection
	dim   int
	attrs map[string]string // column -> declared type
}

// parseSchema converts the public schema into the core one, returning
// the declared column types alongside.
func parseSchema(s Schema) (core.Schema, map[string]string, error) {
	metric := s.Metric
	if metric == "" {
		metric = "l2"
	}
	m, err := vec.ParseMetric(metric)
	if err != nil {
		return core.Schema{}, nil, err
	}
	attrs := map[string]filter.Kind{}
	types := map[string]string{}
	for col, typ := range s.Attributes {
		switch typ {
		case "int":
			attrs[col] = filter.Int64
		case "float":
			attrs[col] = filter.Float64
		case "string":
			attrs[col] = filter.String
		default:
			return core.Schema{}, nil, fmt.Errorf("vdbms: column %q has unknown type %q (want int/float/string)", col, typ)
		}
		types[col] = typ
	}
	return core.Schema{
		Dim:             s.Dim,
		Metric:          m,
		Attributes:      attrs,
		RebuildFraction: s.RebuildFraction,
		Quantization:    s.Quantization,
		RerankK:         s.RerankK,
	}, types, nil
}

func newCollection(name string, s Schema) (*Collection, error) {
	cs, types, err := parseSchema(s)
	if err != nil {
		return nil, err
	}
	inner, err := core.NewCollection(name, cs)
	if err != nil {
		return nil, err
	}
	return &Collection{inner: inner, dim: s.Dim, attrs: types}, nil
}

// Name returns the collection name.
func (c *Collection) Name() string { return c.inner.Name() }

// Dim returns the vector dimensionality.
func (c *Collection) Dim() int { return c.dim }

// Len returns the number of live vectors.
func (c *Collection) Len() int { return c.inner.Len() }

// Insert appends a vector with attribute values (one per schema
// column; use nil when the schema has no attributes) and returns the
// assigned id.
func (c *Collection) Insert(vector []float32, attrs map[string]any) (int64, error) {
	converted, err := convertAttrs(attrs)
	if err != nil {
		return 0, err
	}
	return c.inner.Insert(vector, converted)
}

// UpdateVector replaces the vector stored at id.
func (c *Collection) UpdateVector(id int64, vector []float32) error {
	return c.inner.UpdateVector(id, vector)
}

// Delete removes id from all future query results.
func (c *Collection) Delete(id int64) error { return c.inner.Delete(id) }

// Get returns the vector and attributes stored at id.
func (c *Collection) Get(id int64) ([]float32, map[string]any, error) {
	v, vals, err := c.inner.Get(id)
	if err != nil {
		return nil, nil, err
	}
	out := map[string]any{}
	for name, val := range vals {
		switch c.attrs[name] {
		case "int":
			out[name] = val.I
		case "float":
			out[name] = val.F
		default:
			out[name] = val.S
		}
	}
	return v, out, nil
}

// AttributeTypes returns the declared attribute columns and their
// types ("int", "float", "string").
func (c *Collection) AttributeTypes() map[string]string {
	out := make(map[string]string, len(c.attrs))
	for k, v := range c.attrs {
		out[k] = v
	}
	return out
}

// CreateIndex builds an ANN index over the current rows. Kind is an
// index family from IndexKinds; opts are family-specific integer knobs
// (e.g. {"m": 16} for HNSW, {"nlist": 256} for IVF). The build runs
// without blocking concurrent reads or writes and installs atomically
// on return.
func (c *Collection) CreateIndex(kind string, opts map[string]int) error {
	return c.inner.CreateIndex(kind, opts)
}

// DropIndex removes the ANN index; searches fall back to exact scan.
func (c *Collection) DropIndex() { c.inner.DropIndex() }

// IndexInfo reports the index family (empty if none), how many rows
// the build covers, and how many mutations have accrued since.
func (c *Collection) IndexInfo() (kind string, covered, dirty int) {
	return c.inner.IndexInfo()
}

// IndexStatus is IndexInfo plus whether a background rebuild is
// currently running.
func (c *Collection) IndexStatus() (kind string, covered, dirty int, building bool) {
	return c.inner.IndexStatus()
}

// WaitForIndex blocks until no background index rebuild is in flight.
// Queries never need it — a search during a rebuild just uses the
// previous index — but tests and freshness-sensitive callers can use
// it as a barrier after a burst of writes.
func (c *Collection) WaitForIndex() { c.inner.WaitForIndex() }

// Filter is one predicate of a hybrid query. Op is one of
// "=", "!=", "<", "<=", ">", ">=", "in". Value holds an int, float64,
// or string matching the column type ("in" takes a []any).
type Filter struct {
	Column string
	Op     string
	Value  any
	Set    []any
}

// Hit is one search result.
type Hit struct {
	ID   int64
	Dist float32
}

// SearchRequest describes a vector query.
type SearchRequest struct {
	// Vector is the query vector for single-vector queries.
	Vector []float32
	// Vectors holds multiple query vectors for multi-vector queries;
	// requires EntityColumn.
	Vectors [][]float32
	// K is the number of results (required).
	K int
	// Filters are conjunctive attribute predicates (hybrid query).
	Filters []Filter
	// Policy selects the plan: "" or "cost" (cost-based optimizer),
	// "rule" (selectivity heuristic), a system profile ("vearch",
	// "weaviate", "qdrant", "analyticdb-v", "milvus", "euclid"), or
	// "plan:<brute_force|pre_filter|post_filter|single_stage>" to
	// force one.
	Policy string
	// Ef is the index beam/leaf budget (0 = index default).
	Ef int
	// NProbe is the bucket probe count for IVF/LSH-style indexes.
	NProbe int
	// Alpha is the post-filter over-fetch multiplier (default 4).
	Alpha int
	// TargetRecall, in (0,1], asks the auto-tuner to pick the cheapest
	// Ef/NProbe its measured frontier proves meets this recall for the
	// query's k (EnableAutoTune). Explicit Ef/NProbe win over it; while
	// the frontier is cold the safe default (ladder maximum) is used.
	// Zero falls back to the collection's default target, if one is
	// set (SetTargetRecall).
	TargetRecall float64
	// RerankK overrides the exact re-rank width for quantized index
	// scans (0 = index default, max(4k, 32)). Larger values trade
	// latency for recall; ignored by full-precision indexes.
	RerankK int
	// Parallelism is the intra-query worker count: exhaustive and
	// bucket scans partition their work across this many workers,
	// drawn from a shared process-wide pool. 0 uses every CPU
	// (GOMAXPROCS); 1 scans serially. Results are identical at every
	// setting — partitions merge through an id-deterministic top-k.
	Parallelism int
	// EntityColumn names an int attribute grouping rows into entities
	// for multi-vector queries.
	EntityColumn string
	// Aggregator combines multi-vector scores: "min" (default),
	// "mean", "max", or "weighted_sum" (with Weights).
	Aggregator string
	Weights    []float32
	// Trace, when true, records a span tree of the query pipeline
	// (plan, filter, index probe, ...) and returns it in
	// SearchResult.Trace. Adds a few microseconds per query.
	Trace bool
}

// TraceSpan is one timed stage of a query's execution. Children are
// sub-stages; Annotations carry integer counters (distance
// computations, nodes visited, survivors of a filter, ...).
type TraceSpan struct {
	Stage         string            `json:"stage"`
	DurationNanos int64             `json:"duration_ns"`
	Annotations   map[string]int64  `json:"annotations,omitempty"`
	Tags          map[string]string `json:"tags,omitempty"`
	Children      []TraceSpan       `json:"children,omitempty"`
}

func convertSpan(r obs.SpanReport) TraceSpan {
	out := TraceSpan{
		Stage:         r.Stage,
		DurationNanos: r.DurationNanos,
		Annotations:   r.Annotations,
		Tags:          r.Tags,
	}
	for _, c := range r.Children {
		out.Children = append(out.Children, convertSpan(c))
	}
	return out
}

// SearchResult is the response to Search.
type SearchResult struct {
	Hits []Hit
	// Plan is the executed plan name ("brute_force", "pre_filter",
	// "post_filter", or "single_stage").
	Plan string
	// Ef and NProbe are the search parameters the query actually ran
	// with after knob resolution (0 = the index's built-in default was
	// used for that knob).
	Ef     int
	NProbe int
	// ParamSource says where those parameters came from: "explicit",
	// "tuned", "safe_default", "collection_default", or
	// "index_default".
	ParamSource string
	// Trace is the span tree of this query, present only when
	// SearchRequest.Trace was set.
	Trace *TraceSpan `json:"Trace,omitempty"`
}

// Search executes a k-NN, hybrid, or multi-vector query.
func (c *Collection) Search(req SearchRequest) (SearchResult, error) {
	preds, err := convertFilters(req.Filters)
	if err != nil {
		return SearchResult{}, err
	}
	agg := vec.AggMin
	if req.Aggregator != "" {
		agg, err = vec.ParseAggregator(req.Aggregator)
		if err != nil {
			return SearchResult{}, err
		}
	}
	var tr *obs.Trace
	if req.Trace {
		tr = obs.NewTrace("search")
	}
	res, dec, err := c.inner.Search(core.Request{
		Vector:       req.Vector,
		Vectors:      req.Vectors,
		K:            req.K,
		Preds:        preds,
		Policy:       req.Policy,
		Ef:           req.Ef,
		NProbe:       req.NProbe,
		TargetRecall: req.TargetRecall,
		Alpha:        req.Alpha,
		RerankK:      req.RerankK,
		Parallelism:  req.Parallelism,
		EntityColumn: req.EntityColumn,
		Aggregator:   agg,
		Weights:      req.Weights,
		Trace:        tr,
	})
	if err != nil {
		return SearchResult{}, err
	}
	out := SearchResult{
		Hits:        convertHits(res),
		Plan:        dec.Plan.Kind.String(),
		Ef:          dec.Ef,
		NProbe:      dec.NProbe,
		ParamSource: dec.ParamSource,
	}
	if rep := tr.Finish(); rep != nil {
		span := convertSpan(*rep)
		out.Trace = &span
	}
	return out, nil
}

// SearchContext executes Search under ctx: a query whose context is
// cancelled or past its deadline returns ctx's error instead of
// running to completion. The underlying index probe is CPU-bound and
// cannot be interrupted mid-flight, so on early return it finishes in
// the background and its result is discarded; the caller gets its
// answer (or error) no later than the deadline either way.
func (c *Collection) SearchContext(ctx context.Context, req SearchRequest) (SearchResult, error) {
	if err := ctx.Err(); err != nil {
		return SearchResult{}, err
	}
	type out struct {
		res SearchResult
		err error
	}
	ch := make(chan out, 1)
	go func() {
		res, err := c.Search(req)
		ch <- out{res, err}
	}()
	select {
	case o := <-ch:
		return o.res, o.err
	case <-ctx.Done():
		return SearchResult{}, ctx.Err()
	}
}

// SearchRange returns every live vector within the squared-distance
// radius, optionally filtered.
func (c *Collection) SearchRange(q []float32, radius float32, filters []Filter) ([]Hit, error) {
	preds, err := convertFilters(filters)
	if err != nil {
		return nil, err
	}
	res, err := c.inner.SearchRange(q, radius, preds)
	if err != nil {
		return nil, err
	}
	return convertHits(res), nil
}

// SearchBatch answers a batch of queries in parallel, all against one
// snapshot. req carries the shared execution knobs — K, Filters,
// Policy (including "plan:<kind>" forcing), Ef, NProbe, Alpha,
// Parallelism — and one plan is chosen and reused for the whole batch;
// the per-query fields (Vector, Vectors, EntityColumn, Trace) are
// ignored. A query that fails does not discard the rest of the batch:
// its slot is nil and the returned error wraps each failing query's
// index (errors.Join), so callers keep the successful answers — the
// same partial-results philosophy as the distributed read path.
func (c *Collection) SearchBatch(qs [][]float32, req SearchRequest) ([][]Hit, error) {
	preds, err := convertFilters(req.Filters)
	if err != nil {
		return nil, err
	}
	res, batchErr := c.inner.SearchBatch(qs, core.Request{
		K:            req.K,
		Preds:        preds,
		Policy:       req.Policy,
		Ef:           req.Ef,
		NProbe:       req.NProbe,
		TargetRecall: req.TargetRecall,
		Alpha:        req.Alpha,
		RerankK:      req.RerankK,
		Parallelism:  req.Parallelism,
	})
	out := make([][]Hit, len(res))
	for i, rs := range res {
		if rs == nil {
			continue
		}
		out[i] = convertHits(rs)
	}
	return out, batchErr
}

// Iterator pages through results incrementally (Section 2.6(5)).
type Iterator struct {
	inner *executor.Iterator
}

// OpenIterator starts an incremental query; call Next for pages.
func (c *Collection) OpenIterator(q []float32, filters []Filter, ef int) (*Iterator, error) {
	preds, err := convertFilters(filters)
	if err != nil {
		return nil, err
	}
	it, err := c.inner.OpenIterator(q, preds, ef)
	if err != nil {
		return nil, err
	}
	return &Iterator{inner: it}, nil
}

// Next returns up to n further hits; empty means exhausted.
func (it *Iterator) Next(n int) ([]Hit, error) {
	res, err := it.inner.Next(n)
	if err != nil {
		return nil, err
	}
	out := make([]Hit, len(res))
	for i, r := range res {
		out[i] = Hit{ID: r.ID, Dist: r.Dist}
	}
	return out, nil
}

func convertHits(rs []core.Result) []Hit {
	out := make([]Hit, len(rs))
	for i, r := range rs {
		out[i] = Hit{ID: r.ID, Dist: r.Dist}
	}
	return out
}

func convertAttrs(attrs map[string]any) (map[string]filter.Value, error) {
	if attrs == nil {
		return nil, nil
	}
	out := make(map[string]filter.Value, len(attrs))
	for name, v := range attrs {
		val, err := convertValue(v)
		if err != nil {
			return nil, fmt.Errorf("vdbms: attribute %q: %w", name, err)
		}
		out[name] = val
	}
	return out, nil
}

func convertValue(v any) (filter.Value, error) {
	switch x := v.(type) {
	case int:
		return filter.IntV(int64(x)), nil
	case int64:
		return filter.IntV(x), nil
	case float64:
		return filter.FloatV(x), nil
	case float32:
		return filter.FloatV(float64(x)), nil
	case string:
		return filter.StringV(x), nil
	default:
		return filter.Value{}, fmt.Errorf("unsupported value type %T", v)
	}
}

func convertFilters(fs []Filter) ([]filter.Predicate, error) {
	if len(fs) == 0 {
		return nil, nil
	}
	out := make([]filter.Predicate, 0, len(fs))
	for _, f := range fs {
		op, err := parseOp(f.Op)
		if err != nil {
			return nil, err
		}
		p := filter.Predicate{Column: f.Column, Op: op}
		if op == filter.In {
			for _, s := range f.Set {
				val, err := convertValue(s)
				if err != nil {
					return nil, fmt.Errorf("vdbms: filter on %q: %w", f.Column, err)
				}
				p.Set = append(p.Set, val)
			}
		} else if f.Value != nil {
			val, err := convertValue(f.Value)
			if err != nil {
				return nil, fmt.Errorf("vdbms: filter on %q: %w", f.Column, err)
			}
			p.Value = val
		}
		out = append(out, p)
	}
	return out, nil
}

func parseOp(s string) (filter.Op, error) {
	switch s {
	case "=", "==":
		return filter.Eq, nil
	case "!=":
		return filter.Ne, nil
	case "<":
		return filter.Lt, nil
	case "<=":
		return filter.Le, nil
	case ">":
		return filter.Gt, nil
	case ">=":
		return filter.Ge, nil
	case "in":
		return filter.In, nil
	default:
		return 0, fmt.Errorf("vdbms: unknown operator %q", s)
	}
}

// IndexKinds lists the registered ANN index families available to
// CreateIndex.
func IndexKinds() []string {
	return []string{
		"annoy", "fanng", "flat", "hnsw", "ivfadc", "ivfflat",
		"ivfsq", "kdforest", "kdtree", "knng", "lsh", "nsg", "nsw",
		"pcatree", "pkdtree", "rptree", "spectral", "vamana",
	}
}

// Save writes the collection (schema, vectors, attributes, deletions,
// and the index recipe) to a single file, atomically. Indexes are
// rebuilt on load from their recorded family and options.
func (c *Collection) Save(path string) error { return c.inner.Save(path) }

// wrapCollection adapts a restored core collection to the public type.
func wrapCollection(inner *core.Collection) *Collection {
	types := map[string]string{}
	for name, kind := range inner.AttributeKinds() {
		switch kind {
		case filter.Int64:
			types[name] = "int"
		case filter.Float64:
			types[name] = "float"
		default:
			types[name] = "string"
		}
	}
	return &Collection{inner: inner, dim: inner.Dim(), attrs: types}
}

// RestoreCollection loads a collection previously written by
// Collection.Save and registers it under its saved name.
func (db *DB) RestoreCollection(path string) (*Collection, error) {
	inner, err := core.Load(path)
	if err != nil {
		return nil, err
	}
	col := wrapCollection(inner)
	db.mu.Lock()
	if _, dup := db.collections[col.Name()]; dup {
		db.mu.Unlock()
		return nil, fmt.Errorf("vdbms: collection %q already exists", col.Name())
	}
	db.collections[col.Name()] = col
	audit, tune := db.audit, db.tune
	db.mu.Unlock()
	if audit != nil {
		col.EnableRecallAudit(*audit)
	}
	if tune != nil {
		col.EnableAutoTune(*tune)
	}
	return col, nil
}
